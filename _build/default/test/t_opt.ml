(* Tests for the classical optimizer: folding, propagation, CSE, DCE,
   LICM and the induction-variable optimizations. *)

open Impact_ir
open Impact_opt
open Helpers

let test name f = Alcotest.test_case name `Quick f

let insn_count (p : Prog.t) = Prog.insn_count p

(* Count instructions matching a predicate anywhere in the program. *)
let count_if (p : Prog.t) f =
  List.length (List.filter f (Block.insns p.Prog.entry))

let is_mul (i : Insn.t) = i.Insn.op = Insn.IBin Insn.Mul

let is_load (i : Insn.t) = Insn.is_load i

let fold_tests =
  let prog_with ops =
    let b = irb () in
    let is = ops b in
    List.iter (fun (n, r) -> output b n r) [];
    prog_of b (List.map (fun i -> Block.Ins i) is)
  in
  ignore prog_with;
  [
    test "constant arithmetic folds to a move" (fun () ->
      let b = irb () in
      let r1 = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" r1;
      let p =
        prog_of b [ Block.Ins (Build.ib ctx Insn.Mul r1 (Operand.Int 6) (Operand.Int 7)) ]
      in
      let p = Fold.run p in
      (match Block.insns p.Prog.entry with
      | [ { Insn.op = Insn.IMov; srcs = [| Operand.Int 42 |]; _ } ] -> ()
      | _ -> Alcotest.fail "expected mov 42");
      check_int "value" 42 (out_int (run p) "x"));
    test "x*1, x+0, x-0 simplify" (fun () ->
      let b = irb () in
      let r1 = reg b Reg.Int and r2 = reg b Reg.Int and r3 = reg b Reg.Int and r4 = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" r4;
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx r1 (Operand.Int 5));
            Block.Ins (Build.ib ctx Insn.Mul r2 (Operand.Reg r1) (Operand.Int 1));
            Block.Ins (Build.ib ctx Insn.Add r3 (Operand.Reg r2) (Operand.Int 0));
            Block.Ins (Build.ib ctx Insn.Sub r4 (Operand.Reg r3) (Operand.Int 0));
          ]
      in
      let p' = Fold.run p in
      check_int "no arithmetic left" 0
        (count_if p' (fun i -> match i.Insn.op with Insn.IBin _ -> true | _ -> false));
      check_int "value preserved" 5 (out_int (run p') "x"));
    test "x*0 and float identities" (fun () ->
      let b = irb () in
      let r1 = reg b Reg.Int and r2 = reg b Reg.Int in
      let f1 = reg b Reg.Float and f2 = reg b Reg.Float in
      let ctx = b.ctx in
      output b "x" r2;
      output b "y" f2;
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx r1 (Operand.Int 5));
            Block.Ins (Build.ib ctx Insn.Mul r2 (Operand.Reg r1) (Operand.Int 0));
            Block.Ins (Build.fmov ctx f1 (Operand.Flt 2.5));
            Block.Ins (Build.fb ctx Insn.Fmul f2 (Operand.Reg f1) (Operand.Flt 1.0));
          ]
      in
      let p' = Fold.run p in
      let r = run p' in
      check_int "x" 0 (out_int r "x");
      check_close "y" 2.5 (out_flt r "y"));
    test "constant-condition branch becomes jump or disappears" (fun () ->
      let b = irb () in
      let r1 = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" r1;
      let p =
        prog_of b
          [
            Block.Ins (Build.br ctx Reg.Int Insn.Lt (Operand.Int 1) (Operand.Int 2) "T");
            Block.Ins (Build.imov ctx r1 (Operand.Int 9));
            Block.Lbl "T";
            Block.Ins (Build.imov ctx r1 (Operand.Int 5));
            Block.Ins (Build.br ctx Reg.Int Insn.Gt (Operand.Int 1) (Operand.Int 2) "U");
            Block.Lbl "U";
          ]
      in
      let p' = Fold.run p in
      check_int "one jump, no branches" 1
        (count_if p' (fun i -> i.Insn.op = Insn.Jmp));
      check_int "taken" 5 (out_int (run p') "x"));
    test "self-move disappears" (fun () ->
      let b = irb () in
      let r1 = reg b Reg.Int in
      let ctx = b.ctx in
      let p = prog_of b [ Block.Ins (Build.imov ctx r1 (Operand.Reg r1)) ] in
      check_int "removed" 0 (insn_count (Fold.run p)));
  ]

let propagate_tests =
  [
    test "copies propagate into uses" (fun () ->
      let b = irb () in
      let r1 = reg b Reg.Int and r2 = reg b Reg.Int and r3 = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" r3;
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx r1 (Operand.Int 7));
            Block.Ins (Build.imov ctx r2 (Operand.Reg r1));
            Block.Ins (Build.ib ctx Insn.Add r3 (Operand.Reg r2) (Operand.Reg r2));
          ]
      in
      let p' = Propagate.run p in
      (* The add now reads the constant directly. *)
      let add = List.nth (Block.insns p'.Prog.entry) 2 in
      check_bool "const operand" true (Operand.equal add.Insn.srcs.(0) (Operand.Int 7));
      check_int "value" 14 (out_int (run p') "x"));
    test "binding killed when source is redefined" (fun () ->
      let b = irb () in
      let r1 = reg b Reg.Int and r2 = reg b Reg.Int and r3 = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" r3;
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx r1 (Operand.Int 7));
            Block.Ins (Build.imov ctx r2 (Operand.Reg r1));
            Block.Ins (Build.imov ctx r1 (Operand.Int 100));
            Block.Ins (Build.imov ctx r3 (Operand.Reg r2));
          ]
      in
      let p' = Propagate.run p in
      check_int "old value survives" 7 (out_int (run p') "x"));
    test "knowledge reset at labels" (fun () ->
      let b = irb () in
      let r1 = reg b Reg.Int and r2 = reg b Reg.Int and g = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" r2;
      (* r1 is 1 or 2 depending on the branch; after the join it must not
         be treated as the constant 1. *)
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx g (Operand.Int 1));
            Block.Ins (Build.imov ctx r1 (Operand.Int 1));
            Block.Ins (Build.br ctx Reg.Int Insn.Gt (Operand.Reg g) (Operand.Int 0) "J");
            Block.Ins (Build.imov ctx r1 (Operand.Int 2));
            Block.Lbl "J";
            Block.Ins (Build.imov ctx r2 (Operand.Reg r1));
          ]
      in
      let p' = Propagate.run p in
      check_int "join-safe" 1 (out_int (run p') "x"));
  ]

let cse_tests =
  [
    test "repeated expression collapses" (fun () ->
      let b = irb () in
      let r0 = reg b Reg.Int in
      let r1 = reg b Reg.Int and r2 = reg b Reg.Int and r3 = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" r3;
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx r0 (Operand.Int 3));
            Block.Ins (Build.ib ctx Insn.Mul r1 (Operand.Reg r0) (Operand.Int 4));
            Block.Ins (Build.ib ctx Insn.Mul r2 (Operand.Reg r0) (Operand.Int 4));
            Block.Ins (Build.ib ctx Insn.Add r3 (Operand.Reg r1) (Operand.Reg r2));
          ]
      in
      let p' = Cse.run p in
      check_int "one multiply left" 1 (count_if p' is_mul);
      check_int "value" 24 (out_int (run p') "x"));
    test "commutative operands match" (fun () ->
      let b = irb () in
      let a = reg b Reg.Int and c = reg b Reg.Int in
      let r1 = reg b Reg.Int and r2 = reg b Reg.Int and r3 = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" r3;
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx a (Operand.Int 3));
            Block.Ins (Build.imov ctx c (Operand.Int 9));
            Block.Ins (Build.ib ctx Insn.Add r1 (Operand.Reg a) (Operand.Reg c));
            Block.Ins (Build.ib ctx Insn.Add r2 (Operand.Reg c) (Operand.Reg a));
            Block.Ins (Build.ib ctx Insn.Sub r3 (Operand.Reg r1) (Operand.Reg r2));
          ]
      in
      let p' = Cse.run p in
      check_int "one add left" 1
        (count_if p' (fun i -> i.Insn.op = Insn.IBin Insn.Add));
      check_int "value" 0 (out_int (run p') "x"));
    test "redundant load eliminated; store kills same array only" (fun () ->
      let b = irb () in
      float_array b "A" [| 1.0; 2.0 |];
      float_array b "B" [| 5.0 |];
      let f1 = reg b Reg.Float and f2 = reg b Reg.Float and f3 = reg b Reg.Float in
      let f4 = reg b Reg.Float in
      let ctx = b.ctx in
      output b "x" f4;
      let p =
        prog_of b
          [
            Block.Ins (Build.load ctx Reg.Float f1 (Operand.Lab "A") (Operand.Int 0));
            Block.Ins (Build.load ctx Reg.Float f2 (Operand.Lab "A") (Operand.Int 0));
            Block.Ins (Build.store ctx Reg.Float (Operand.Lab "B") (Operand.Int 0) (Operand.Flt 9.0));
            (* The store to B must not kill knowledge of A. *)
            Block.Ins (Build.load ctx Reg.Float f3 (Operand.Lab "A") (Operand.Int 0));
            Block.Ins
              (Build.fb ctx Insn.Fadd f4 (Operand.Reg f2) (Operand.Reg f3));
          ]
      in
      let p' = Cse.run p in
      check_int "one load left" 1 (count_if p' is_load);
      check_close "value" 2.0 (out_flt (run p') "x"));
    test "store to same array kills loads" (fun () ->
      let b = irb () in
      float_array b "A" [| 1.0; 2.0 |];
      let f1 = reg b Reg.Float and f2 = reg b Reg.Float and w = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" f2;
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx w (Operand.Int 0));
            Block.Ins (Build.load ctx Reg.Float f1 (Operand.Lab "A") (Operand.Int 0));
            Block.Ins (Build.store ctx Reg.Float (Operand.Lab "A") (Operand.Reg w) (Operand.Flt 9.0));
            Block.Ins (Build.load ctx Reg.Float f2 (Operand.Lab "A") (Operand.Int 0));
          ]
      in
      let p' = Cse.run p in
      check_int "both loads survive" 2 (count_if p' is_load);
      check_close "sees the store" 9.0 (out_flt (run p') "x"));
    test "store-to-load forwarding" (fun () ->
      let b = irb () in
      float_array b "A" [| 0.0 |];
      let f1 = reg b Reg.Float and f2 = reg b Reg.Float in
      let ctx = b.ctx in
      output b "x" f2;
      let p =
        prog_of b
          [
            Block.Ins (Build.fmov ctx f1 (Operand.Flt 3.5));
            Block.Ins (Build.store ctx Reg.Float (Operand.Lab "A") (Operand.Int 0) (Operand.Reg f1));
            Block.Ins (Build.load ctx Reg.Float f2 (Operand.Lab "A") (Operand.Int 0));
          ]
      in
      let p' = Cse.run p in
      check_int "load forwarded away" 0 (count_if p' is_load);
      check_close "value" 3.5 (out_flt (run p') "x"));
  ]

let dce_tests =
  [
    test "dead arithmetic removed, outputs kept" (fun () ->
      let b = irb () in
      let r1 = reg b Reg.Int and dead = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" r1;
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx r1 (Operand.Int 1));
            Block.Ins (Build.ib ctx Insn.Mul dead (Operand.Reg r1) (Operand.Int 10));
          ]
      in
      let p' = Dce.run p in
      check_int "only the output def" 1 (insn_count p');
      check_int "value" 1 (out_int (run p') "x"));
    test "self-feeding dead cycle removed" (fun () ->
      let b = irb () in
      let live = reg b Reg.Int and cyc = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" live;
      let body =
        [
          Block.Ins (Build.ib ctx Insn.Add cyc (Operand.Reg cyc) (Operand.Int 1));
          Block.Ins (Build.ib ctx Insn.Add live (Operand.Reg live) (Operand.Int 2));
          Block.Ins (Build.br ctx Reg.Int Insn.Le (Operand.Reg live) (Operand.Int 10) "L");
        ]
      in
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx cyc (Operand.Int 0));
            Block.Ins (Build.imov ctx live (Operand.Int 0));
            Block.Loop { Block.lid = 1; head = "L"; exit_lbl = "X"; meta = Block.no_meta; body };
          ]
      in
      let p' = Dce.run p in
      check_int "cycle gone" 0
        (count_if p' (fun i ->
           match i.Insn.dst with Some d -> Reg.equal d cyc | None -> false));
      check_int "value" 12 (out_int (run p') "x"));
    test "stores are never removed" (fun () ->
      let b = irb () in
      float_array b "A" [| 0.0 |];
      let ctx = b.ctx in
      let p =
        prog_of b
          [ Block.Ins (Build.store ctx Reg.Float (Operand.Lab "A") (Operand.Int 0) (Operand.Flt 1.0)) ]
      in
      check_int "kept" 1 (insn_count (Dce.run p)));
  ]

let licm_tests =
  let loop_with body =
    { Block.lid = 1; head = "L"; exit_lbl = "X"; meta = Block.no_meta; body }
  in
  [
    test "invariant computation hoisted" (fun () ->
      let b = irb () in
      let inv = reg b Reg.Int and t = reg b Reg.Int and v = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" t;
      let body =
        [
          Block.Ins (Build.ib ctx Insn.Mul t (Operand.Reg inv) (Operand.Int 3));
          Block.Ins (Build.ib ctx Insn.Add v (Operand.Reg v) (Operand.Int 1));
          Block.Ins (Build.br ctx Reg.Int Insn.Le (Operand.Reg v) (Operand.Int 5) "L");
        ]
      in
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx inv (Operand.Int 7));
            Block.Ins (Build.imov ctx v (Operand.Int 1));
            Block.Loop (loop_with body);
          ]
      in
      let p' = Licm.run p in
      let l = List.hd (Block.loops p'.Prog.entry) in
      check_int "body shrank" 2 (List.length (Block.body_insns l));
      check_int "value" 21 (out_int (run p') "x"));
    test "load not hoisted past a may-alias store" (fun () ->
      let b = irb () in
      float_array b "A" [| 1.0; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |];
      let f1 = reg b Reg.Float and v = reg b Reg.Int and w = reg b Reg.Int in
      let ctx = b.ctx in
      output b "y" f1;
      let body =
        [
          (* load A[0] is "invariant" syntactically but A is stored to. *)
          Block.Ins (Build.load ctx Reg.Float f1 (Operand.Lab "A") (Operand.Int 0));
          Block.Ins (Build.store ctx Reg.Float (Operand.Lab "A") (Operand.Reg w) (Operand.Flt 5.0));
          Block.Ins (Build.ib ctx Insn.Add w (Operand.Reg w) (Operand.Int 4));
          Block.Ins (Build.ib ctx Insn.Add v (Operand.Reg v) (Operand.Int 1));
          Block.Ins (Build.br ctx Reg.Int Insn.Le (Operand.Reg v) (Operand.Int 4) "L");
        ]
      in
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx v (Operand.Int 1));
            Block.Ins (Build.imov ctx w (Operand.Int 0));
            Block.Loop (loop_with body);
          ]
      in
      let p' = Licm.run p in
      let l = List.hd (Block.loops p'.Prog.entry) in
      check_int "load stays" 5 (List.length (Block.body_insns l));
      check_close "sees stores" 5.0 (out_flt (run p') "y"));
    test "carried scalar not hoisted" (fun () ->
      let b = irb () in
      let s = reg b Reg.Int and v = reg b Reg.Int in
      let ctx = b.ctx in
      output b "x" s;
      let body =
        [
          Block.Ins (Build.ib ctx Insn.Add s (Operand.Reg s) (Operand.Int 2));
          Block.Ins (Build.ib ctx Insn.Add v (Operand.Reg v) (Operand.Int 1));
          Block.Ins (Build.br ctx Reg.Int Insn.Le (Operand.Reg v) (Operand.Int 4) "L");
        ]
      in
      let p =
        prog_of b
          [
            Block.Ins (Build.imov ctx s (Operand.Int 0));
            Block.Ins (Build.imov ctx v (Operand.Int 1));
            Block.Loop (loop_with body);
          ]
      in
      let p' = Licm.run p in
      check_int "accumulates" 8 (out_int (run p') "x"));
  ]

let ivopt_tests =
  [
    test "subscript arithmetic becomes pointer increments" (fun () ->
      let p = Conv.run (lower (vecadd_ast 32)) in
      let l = List.hd (Block.loops p.Prog.entry) in
      let body = Block.body_insns l in
      check_int "no multiplies in the loop" 0
        (List.length (List.filter is_mul body));
      (* Paper Figure 1b shape: 2 loads, 1 add, 1 store, 1 increment,
         1 branch. *)
      check_int "six instructions" 6 (List.length body));
    test "loop exit test moved to the derived induction variable" (fun () ->
      let p = Conv.run (lower (vecadd_ast 32)) in
      let l = List.hd (Block.loops p.Prog.entry) in
      let body = Block.body_insns l in
      let back = List.nth body (List.length body - 1) in
      (* The branch operand is the same register some load uses as its
         offset. *)
      let load_offsets =
        List.filter_map
          (fun (i : Insn.t) ->
            if Insn.is_load i then Operand.as_reg i.Insn.srcs.(1) else None)
          body
      in
      (match Operand.as_reg back.Insn.srcs.(0) with
      | Some r -> check_bool "tests a pointer" true (List.exists (Reg.equal r) load_offsets)
      | None -> Alcotest.fail "branch operand not a register");
      (* meta stays consistent with the rewritten loop *)
      match l.Block.meta.Block.counter with
      | Some c ->
        check_bool "meta counter is the derived iv" true
          (Operand.equal back.Insn.srcs.(0) (Operand.Reg c))
      | None -> Alcotest.fail "no counter in meta");
    test "conv preserves semantics on all helper kernels" (fun () ->
      List.iter
        (fun ast ->
          let naive = run (lower ast) in
          let opt = run (Conv.run (lower ast)) in
          same_observables "conv" naive opt)
        [ vecadd_ast 19; dotprod_ast 23; maxval_ast 31; recurrence_ast 17 ]);
    test "conv shrinks dynamic instruction count substantially" (fun () ->
      let naive = run (lower (vecadd_ast 64)) in
      let opt = run (Conv.run (lower (vecadd_ast 64))) in
      check_bool "at least 2x fewer instructions" true
        (opt.Impact_sim.Sim.dyn_insns * 2 < naive.Impact_sim.Sim.dyn_insns));
  ]

let suite =
  [
    ("opt.fold", fold_tests);
    ("opt.propagate", propagate_tests);
    ("opt.cse", cse_tests);
    ("opt.dce", dce_tests);
    ("opt.licm", licm_tests);
    ("opt.ivopt", ivopt_tests);
  ]
