(* Tests for the 40-loop Table 2 workload suite: structure, metadata
   consistency (including our classifier agreeing with the published
   labels) and end-to-end correctness at Lev4. *)

open Impact_ir
open Impact_workloads
open Helpers

let test name f = Alcotest.test_case name `Quick f

let classify_ours (w : Suite.t) =
  let p = Impact_opt.Conv.run (lower w.Suite.ast) in
  match List.filter Block.is_innermost (Block.loops p.Prog.entry) with
  | l :: _ -> (
    match Impact_analysis.Classify.classify l with
    | Impact_analysis.Classify.Doall -> Suite.Doall
    | Impact_analysis.Classify.Doacross -> Suite.Doacross
    | Impact_analysis.Classify.Serial -> Suite.Serial)
  | [] -> Alcotest.fail "no innermost loop"

let structural_tests =
  [
    test "there are exactly 40 loop nests" (fun () ->
      check_int "count" 40 (List.length Suite.all));
    test "names are unique" (fun () ->
      let names = List.map (fun (w : Suite.t) -> w.Suite.name) Suite.all in
      check_int "unique" 40 (List.length (List.sort_uniq compare names)));
    test "origins partition as 29 PERFECT + 6 SPEC + 5 VECTOR" (fun () ->
      let count o =
        List.length (List.filter (fun (w : Suite.t) -> w.Suite.origin = o) Suite.all)
      in
      check_int "PERFECT" 29 (count "PERFECT");
      check_int "SPEC" 6 (count "SPEC");
      check_int "VECTOR" 5 (count "VECTOR"));
    test "find works" (fun () ->
      check_bool "found" true (Suite.find "dotprod" <> None);
      check_bool "missing" true (Suite.find "nonesuch" = None));
    test "sim_iters is capped" (fun () ->
      List.iter
        (fun (w : Suite.t) ->
          check_bool "cap" true (w.Suite.sim_iters <= Suite.sim_cap);
          check_bool "cap only shrinks" true (w.Suite.sim_iters <= w.Suite.iters))
        Suite.all);
    test "doall / non-doall subsets partition the suite" (fun () ->
      check_int "partition" 40
        (List.length Suite.doall_subset + List.length Suite.non_doall_subset));
    test "declared nesting depth matches the AST" (fun () ->
      List.iter
        (fun (w : Suite.t) ->
          check_int (w.Suite.name ^ " nest") w.Suite.nest
            (Impact_fir.Ast.loop_depth w.Suite.ast.Impact_fir.Ast.stmts))
        Suite.all);
    test "declared conditionals match the AST" (fun () ->
      List.iter
        (fun (w : Suite.t) ->
          check_bool (w.Suite.name ^ " conds") w.Suite.conds
            (Impact_fir.Ast.has_conditional w.Suite.ast.Impact_fir.Ast.stmts))
        Suite.all);
    test "innermost body size approximates the paper's line count" (fun () ->
      (* Each kernel's innermost statement count should be within a factor
         of ~2 of the published source-line count (the published number
         counts FORTRAN lines; ours counts statements). *)
      List.iter
        (fun (w : Suite.t) ->
          let rec innermost_stmts stmts =
            let open Impact_fir.Ast in
            List.fold_left
              (fun acc s ->
                match s with
                | SDo d ->
                  if loop_depth d.body = 0 then max acc (stmt_count d.body)
                  else max acc (innermost_stmts d.body)
                | SIf (_, a, b) -> max acc (max (innermost_stmts a) (innermost_stmts b))
                | SAssign _ | SCycle -> acc)
              0 stmts
          in
          let got = innermost_stmts w.Suite.ast.Impact_fir.Ast.stmts in
          if got * 3 < w.Suite.size || got > (w.Suite.size * 3) + 3 then
            Alcotest.failf "%s: %d statements vs published %d lines" w.Suite.name got
              w.Suite.size)
        Suite.all);
  ]

(* One classification test per workload: our dependence analysis must
   agree with the published Table 2 label on our kernels. *)
let classification_tests =
  List.map
    (fun (w : Suite.t) ->
      test (w.Suite.name ^ " classifies as " ^ Suite.ltype_to_string w.Suite.ltype)
        (fun () ->
          check_string "class"
            (Suite.ltype_to_string w.Suite.ltype)
            (Suite.ltype_to_string (classify_ours w))))
    Suite.all

(* End-to-end correctness: Lev4 at issue-8 preserves every observable of
   every workload. *)
let correctness_tests =
  List.map
    (fun (w : Suite.t) ->
      test (w.Suite.name ^ " Lev4 preserves semantics") (fun () ->
        let base = run (lower w.Suite.ast) in
        let m = measure Impact_core.Level.Lev4 Machine.issue_8 w.Suite.ast in
        same_observables w.Suite.name base m.Impact_core.Compile.result))
    Suite.all

(* A broader sweep (marked Slow): every level on two further machine
   shapes, plus an odd unroll factor that forces the preconditioning
   paths. *)
let deep_tests =
  [
    Alcotest.test_case "deep sweep: all levels, issue-2 and unlimited" `Slow
      (fun () ->
        List.iter
          (fun (w : Suite.t) ->
            let base = run (lower w.Suite.ast) in
            List.iter
              (fun lev ->
                List.iter
                  (fun machine ->
                    let m = measure lev machine w.Suite.ast in
                    same_observables
                      (Printf.sprintf "%s/%s/%s" w.Suite.name
                         (Impact_core.Level.to_string lev) machine.Machine.name)
                      base m.Impact_core.Compile.result)
                  [ Machine.issue_2; Machine.unlimited ])
              Impact_core.Level.all)
          Suite.all);
    Alcotest.test_case "deep sweep: unroll factor 5 at Lev4" `Slow (fun () ->
      List.iter
        (fun (w : Suite.t) ->
          let base = run (lower w.Suite.ast) in
          let m =
            measure ~unroll_factor:5 Impact_core.Level.Lev4 Machine.issue_8 w.Suite.ast
          in
          same_observables (w.Suite.name ^ "/u5") base m.Impact_core.Compile.result)
        Suite.all);
  ]

let suite =
  [
    ("workloads.structure", structural_tests);
    ("workloads.classification", classification_tests);
    ("workloads.correctness", correctness_tests);
    ("workloads.deep", deep_tests);
  ]
