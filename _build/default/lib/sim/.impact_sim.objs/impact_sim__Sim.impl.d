lib/sim/sim.ml: Array Flatten Float Impact_ir Insn List Machine Operand Printf Prog Reg
