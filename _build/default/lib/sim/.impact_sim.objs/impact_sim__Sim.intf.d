lib/sim/sim.mli: Impact_ir
