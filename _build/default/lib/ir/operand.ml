(* Instruction operands: a register, an integer or floating immediate, or
   the base address of a named array (resolved at simulation time). *)

type t =
  | Reg of Reg.t
  | Int of int
  | Flt of float
  | Lab of string

let reg r = Reg r

let int n = Int n

let flt x = Flt x

let lab s = Lab s

let is_reg = function Reg _ -> true | Int _ | Flt _ | Lab _ -> false

let as_reg = function Reg r -> Some r | Int _ | Flt _ | Lab _ -> None

let is_const = function
  | Int _ | Flt _ -> true
  | Reg _ | Lab _ -> false

let equal a b =
  match a, b with
  | Reg r1, Reg r2 -> Reg.equal r1 r2
  | Int n1, Int n2 -> n1 = n2
  | Flt x1, Flt x2 -> Float.equal x1 x2
  | Lab s1, Lab s2 -> String.equal s1 s2
  | (Reg _ | Int _ | Flt _ | Lab _), _ -> false

let to_string = function
  | Reg r -> Reg.to_string r
  | Int n -> string_of_int n
  | Flt x -> Printf.sprintf "%g" x
  | Lab s -> s

let pp ppf o = Format.pp_print_string ppf (to_string o)
