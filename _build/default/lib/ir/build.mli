(** Instruction constructors; all passes and the frontend build code
    through these so instruction ids stay unique per program. *)

val ib :
  Prog.ctx -> Insn.ibin -> Reg.t -> Operand.t -> Operand.t -> Insn.t

val fb :
  Prog.ctx -> Insn.fbin -> Reg.t -> Operand.t -> Operand.t -> Insn.t

val imov : Prog.ctx -> Reg.t -> Operand.t -> Insn.t

val fmov : Prog.ctx -> Reg.t -> Operand.t -> Insn.t

val itof : Prog.ctx -> Reg.t -> Operand.t -> Insn.t

val ftoi : Prog.ctx -> Reg.t -> Operand.t -> Insn.t

val load :
  Prog.ctx -> Reg.cls -> Reg.t -> ?disp:int -> Operand.t -> Operand.t -> Insn.t
(** [load ctx cls dst base off]: [dst = MEM(base + off + disp)]. *)

val store :
  Prog.ctx -> Reg.cls -> ?disp:int -> Operand.t -> Operand.t -> Operand.t -> Insn.t
(** [store ctx cls base off v]: [MEM(base + off + disp) = v]. *)

val br :
  Prog.ctx -> Reg.cls -> Insn.cmp -> Operand.t -> Operand.t -> string -> Insn.t

val jmp : Prog.ctx -> string -> Insn.t

val clone :
  Prog.ctx -> ?dst:Reg.t -> ?srcs:Operand.t array -> ?target:string -> Insn.t -> Insn.t
(** Copy an instruction under a fresh id, optionally replacing fields;
    the source array is copied. *)
