(* Machine description: a parameterized in-order superscalar/VLIW node
   processor. Latencies are the paper's Table 1; the issue rate is the
   maximum number of instructions fetched and issued per cycle, with no
   restriction on the mix except a single branch slot. *)

type t = { name : string; issue : int; branch_slots : int }

(* Table 1 instruction latencies. Register moves are modeled as 1-cycle
   integer-unit operations (the paper does not list moves; renaming-style
   moves are integer copies in IMPACT). *)
let latency (op : Insn.op) =
  match op with
  | Insn.IBin (Insn.Mul) -> 3
  | Insn.IBin (Insn.Div | Insn.Rem) -> 10
  | Insn.IBin _ -> 1
  | Insn.FBin (Insn.Fadd | Insn.Fsub) -> 3
  | Insn.FBin Insn.Fmul -> 3
  | Insn.FBin Insn.Fdiv -> 10
  | Insn.IMov | Insn.FMov -> 1
  | Insn.ItoF | Insn.FtoI -> 3
  | Insn.Load _ -> 2
  | Insn.Store _ -> 1
  | Insn.Br _ | Insn.Jmp -> 1

let make ?(branch_slots = 1) ~issue () =
  { name = Printf.sprintf "issue-%d" issue; issue; branch_slots }

let issue_1 = make ~issue:1 ()

let issue_2 = make ~issue:2 ()

let issue_4 = make ~issue:4 ()

let issue_8 = make ~issue:8 ()

(* "Infinite resources" model used for the paper's worked examples. *)
let unlimited = { name = "issue-inf"; issue = max_int / 2; branch_slots = 1 }

let table1_rows =
  [
    ("Int ALU", 1);
    ("Int multiply", 3);
    ("Int divide", 10);
    ("branch", 1);
    ("memory load", 2);
    ("FP ALU", 3);
    ("FP conversion", 3);
    ("FP multiply", 3);
    ("FP divide", 10);
    ("memory store", 1);
  ]
