(** Resolve a structured block to a flat instruction stream with a label
    table, for simulation and global analyses. *)

type t = { code : Insn.t array; labels : (string, int) Hashtbl.t }

exception Unresolved_label of string

exception Duplicate_label of string

val of_block : Block.t -> t

val target_index : t -> Insn.t -> int
(** Index of a branch's target. *)

val of_prog : Prog.t -> t
