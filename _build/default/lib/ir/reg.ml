(* Virtual registers. The simulated processor has an unbounded register
   file (paper Section 3.1); physical registers only exist as a
   measurement made by the allocator. *)

type cls = Int | Float

type t = { id : int; cls : cls }

type gen = { mutable next : int }

let make_gen () = { next = 1 }

let fresh gen cls =
  let id = gen.next in
  gen.next <- gen.next + 1;
  { id; cls }

let gen_count gen = gen.next

let compare a b = Stdlib.compare (a.id, a.cls) (b.id, b.cls)

let equal a b = a.id = b.id && a.cls = b.cls

let hash a = (a.id * 2) + (match a.cls with Int -> 0 | Float -> 1)

let cls_to_string = function Int -> "i" | Float -> "f"

let to_string r = Printf.sprintf "r%d%s" r.id (cls_to_string r.cls)

let pp ppf r = Format.pp_print_string ppf (to_string r)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
