lib/ir/prog.ml: Block List Printf Reg
