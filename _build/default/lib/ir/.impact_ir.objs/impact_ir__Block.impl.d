lib/ir/block.ml: Insn List Operand Reg
