lib/ir/pp.mli: Block Format Insn Prog
