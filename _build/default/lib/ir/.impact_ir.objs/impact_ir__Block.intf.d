lib/ir/block.mli: Insn Operand Reg
