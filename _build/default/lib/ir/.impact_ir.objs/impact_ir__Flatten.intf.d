lib/ir/flatten.mli: Block Hashtbl Insn Prog
