lib/ir/build.mli: Insn Operand Prog Reg
