lib/ir/pp.ml: Block Format Insn List Prog Reg String
