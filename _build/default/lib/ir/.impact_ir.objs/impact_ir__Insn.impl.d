lib/ir/insn.ml: Array Format List Operand Option Printf Reg
