lib/ir/flatten.ml: Array Block Hashtbl Insn List Prog
