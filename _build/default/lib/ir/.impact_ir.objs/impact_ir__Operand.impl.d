lib/ir/operand.ml: Float Format Printf Reg String
