lib/ir/prog.mli: Block Reg
