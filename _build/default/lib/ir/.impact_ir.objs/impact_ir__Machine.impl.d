lib/ir/machine.ml: Insn Printf
