lib/ir/insn.mli: Format Operand Reg
