lib/ir/build.ml: Array Insn Operand Prog
