lib/ir/machine.mli: Insn
