(** Virtual registers, separated into integer and floating-point classes
    as in the paper's processor model. *)

type cls = Int | Float

type t = { id : int; cls : cls }

(** Fresh-register generator; one per program. *)
type gen

val make_gen : unit -> gen

val fresh : gen -> cls -> t

val gen_count : gen -> int
(** Upper bound (exclusive) on register ids issued so far. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val cls_to_string : cls -> string

val to_string : t -> string
(** [to_string r] prints registers in the paper's style, e.g. [r4f]. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
