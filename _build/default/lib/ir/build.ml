(* Convenience constructors for instructions; every pass and the frontend
   build code through these so that instruction ids stay unique. *)

let ib ctx op dst a b =
  Insn.make ~id:(Prog.fresh_insn_id ctx) ~op:(Insn.IBin op) ~dst ~srcs:[| a; b |] ()

let fb ctx op dst a b =
  Insn.make ~id:(Prog.fresh_insn_id ctx) ~op:(Insn.FBin op) ~dst ~srcs:[| a; b |] ()

let imov ctx dst a =
  Insn.make ~id:(Prog.fresh_insn_id ctx) ~op:Insn.IMov ~dst ~srcs:[| a |] ()

let fmov ctx dst a =
  Insn.make ~id:(Prog.fresh_insn_id ctx) ~op:Insn.FMov ~dst ~srcs:[| a |] ()

let itof ctx dst a =
  Insn.make ~id:(Prog.fresh_insn_id ctx) ~op:Insn.ItoF ~dst ~srcs:[| a |] ()

let ftoi ctx dst a =
  Insn.make ~id:(Prog.fresh_insn_id ctx) ~op:Insn.FtoI ~dst ~srcs:[| a |] ()

let load ctx cls dst ?(disp = 0) base off =
  Insn.make ~id:(Prog.fresh_insn_id ctx) ~op:(Insn.Load cls) ~dst
    ~srcs:[| base; off; Operand.Int disp |] ()

let store ctx cls ?(disp = 0) base off v =
  Insn.make ~id:(Prog.fresh_insn_id ctx) ~op:(Insn.Store cls)
    ~srcs:[| base; off; Operand.Int disp; v |] ()

let br ctx cls cmp a b target =
  Insn.make ~id:(Prog.fresh_insn_id ctx) ~op:(Insn.Br (cls, cmp)) ~srcs:[| a; b |] ~target ()

let jmp ctx target =
  Insn.make ~id:(Prog.fresh_insn_id ctx) ~op:Insn.Jmp ~target ()

(* Clone an instruction under a fresh id, optionally replacing fields. *)
let clone ctx ?dst ?srcs ?target (i : Insn.t) =
  let dst = match dst with Some d -> Some d | None -> i.Insn.dst in
  let srcs = match srcs with Some s -> s | None -> Array.copy i.Insn.srcs in
  let target = match target with Some t -> Some t | None -> i.Insn.target in
  { i with Insn.id = Prog.fresh_insn_id ctx; dst; srcs; target }
