(* Structured code: a block is a sequence of instructions, local labels
   and (possibly nested) loops. Loop back-edges and exits are ordinary
   branch instructions targeting the loop's [head]/[exit_lbl] labels, so
   the instruction stream alone defines the semantics; the structure just
   tells the optimizer where the loops are. *)

type loop_meta = {
  counter : Reg.t option;  (* loop counter register *)
  step : int option;  (* constant increment of the counter *)
  limit : Operand.t option;  (* loop-invariant bound tested by the back-branch *)
  trip : int option;  (* compile-time trip count, if known *)
  latch : string option;  (* label of the increment-and-test tail *)
  unrolled : int;  (* unroll factor already applied (1 = not unrolled) *)
}

type item = Ins of Insn.t | Lbl of string | Loop of loop

and t = item list

and loop = { lid : int; head : string; exit_lbl : string; meta : loop_meta; body : t }

let no_meta =
  { counter = None; step = None; limit = None; trip = None; latch = None; unrolled = 1 }

let rec insns block =
  List.concat_map
    (function
      | Ins i -> [ i ]
      | Lbl _ -> []
      | Loop l -> insns l.body)
    block

let rec loops block =
  List.concat_map
    (function
      | Ins _ | Lbl _ -> []
      | Loop l -> l :: loops l.body)
    block

let is_innermost l =
  List.for_all (function Loop _ -> false | Ins _ | Lbl _ -> true) l.body

let body_insns l =
  List.filter_map (function Ins i -> Some i | Lbl _ | Loop _ -> None) l.body

let rec map_innermost f block =
  let map_item = function
    | Ins i -> Ins i
    | Lbl s -> Lbl s
    | Loop l ->
      if is_innermost l then Loop (f l)
      else Loop { l with body = map_innermost f l.body }
  in
  List.map map_item block

let rec map_loops f block =
  let map_item = function
    | Ins i -> Ins i
    | Lbl s -> Lbl s
    | Loop l -> Loop (f { l with body = map_loops f l.body })
  in
  List.map map_item block

let rec iter_insns f block =
  List.iter
    (function
      | Ins i -> f i
      | Lbl _ -> ()
      | Loop l -> iter_insns f l.body)
    block

let rec map_insns f block =
  List.map
    (function
      | Ins i -> Ins (f i)
      | Lbl s -> Lbl s
      | Loop l -> Loop { l with body = map_insns f l.body })
    block

let rec concat_map_insns f block =
  List.concat_map
    (function
      | Ins i -> List.map (fun j -> Ins j) (f i)
      | Lbl s -> [ Lbl s ]
      | Loop l -> [ Loop { l with body = concat_map_insns f l.body } ])
    block

let find_loop block lid =
  let rec go = function
    | [] -> None
    | Loop l :: rest ->
      if l.lid = lid then Some l
      else (match go l.body with Some x -> Some x | None -> go rest)
    | (Ins _ | Lbl _) :: rest -> go rest
  in
  go block
