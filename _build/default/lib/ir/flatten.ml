(* Resolve a structured block to a flat instruction stream with a label
   table, for simulation. *)

type t = { code : Insn.t array; labels : (string, int) Hashtbl.t }

exception Unresolved_label of string

exception Duplicate_label of string

let of_block block =
  let buf = ref [] in
  let n = ref 0 in
  let labels = Hashtbl.create 64 in
  let define l =
    if Hashtbl.mem labels l then raise (Duplicate_label l);
    Hashtbl.replace labels l !n
  in
  let emit i =
    buf := i :: !buf;
    incr n
  in
  let rec go items =
    List.iter
      (function
        | Block.Ins i -> emit i
        | Block.Lbl l -> define l
        | Block.Loop l ->
          define l.Block.head;
          go l.Block.body;
          define l.Block.exit_lbl)
      items
  in
  go block;
  let code = Array.of_list (List.rev !buf) in
  (* Every branch target must be defined. *)
  Array.iter
    (fun i ->
      match i.Insn.target with
      | Some l when not (Hashtbl.mem labels l) -> raise (Unresolved_label l)
      | Some _ | None -> ())
    code;
  { code; labels }

let target_index t i =
  match i.Insn.target with
  | None -> invalid_arg "Flatten.target_index: not a branch"
  | Some l -> (
    match Hashtbl.find_opt t.labels l with
    | Some k -> k
    | None -> raise (Unresolved_label l))

let of_prog (p : Prog.t) = of_block p.Prog.entry
