(** Instruction operands. *)

type t =
  | Reg of Reg.t  (** a virtual register *)
  | Int of int  (** integer immediate *)
  | Flt of float  (** floating-point immediate *)
  | Lab of string  (** base address of a named array, e.g. [A] in [MEM(A+r1i)] *)

val reg : Reg.t -> t

val int : int -> t

val flt : float -> t

val lab : string -> t

val is_reg : t -> bool

val as_reg : t -> Reg.t option

val is_const : t -> bool
(** [is_const o] is true for integer and floating immediates. *)

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
