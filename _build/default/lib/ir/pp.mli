(** Pretty-printing of structured programs in the paper's assembly
    style. *)

val pp_block : ?indent:int -> Format.formatter -> Block.t -> unit

val pp_prog : Format.formatter -> Prog.t -> unit

val block_to_string : Block.t -> string

val prog_to_string : Prog.t -> string

val pp_schedule : Format.formatter -> (Insn.t * int) list -> unit
(** Instruction text with issue times, as in the paper's figures. *)

val schedule_to_string : (Insn.t * int) list -> string
