(* Pretty-printing of structured programs in the paper's assembly style. *)

let rec pp_block ?(indent = 0) ppf (block : Block.t) =
  let pad = String.make indent ' ' in
  List.iter
    (function
      | Block.Ins i -> Format.fprintf ppf "%s%s@." pad (Insn.to_string i)
      | Block.Lbl l -> Format.fprintf ppf "%s:@." l
      | Block.Loop l ->
        Format.fprintf ppf "%s:@." l.Block.head;
        pp_block ~indent:(indent + 2) ppf l.Block.body;
        Format.fprintf ppf "%s:@." l.Block.exit_lbl)
    block

let pp_prog ppf (p : Prog.t) =
  List.iter
    (fun (a : Prog.adecl) ->
      Format.fprintf ppf ".array %s : %s[%d]@." a.Prog.aname
        (match a.Prog.acls with Reg.Int -> "int" | Reg.Float -> "real")
        a.Prog.asize)
    p.Prog.arrays;
  pp_block ppf p.Prog.entry;
  List.iter
    (fun (name, r) -> Format.fprintf ppf ".output %s = %s@." name (Reg.to_string r))
    p.Prog.outputs

let block_to_string block = Format.asprintf "%a" (pp_block ?indent:None) block

let prog_to_string p = Format.asprintf "%a" pp_prog p

(* Print a scheduled body the way the paper's figures do: instruction text
   plus its issue time. *)
let pp_schedule ppf (pairs : (Insn.t * int) list) =
  List.iter
    (fun (i, t) -> Format.fprintf ppf "%-36s %d@." (Insn.to_string i) t)
    pairs

let schedule_to_string pairs = Format.asprintf "%a" pp_schedule pairs
