(** Parameterized superscalar/VLIW node processor model (paper
    Section 3.1 and Table 1). *)

type t = {
  name : string;
  issue : int;  (** max instructions issued per cycle *)
  branch_slots : int;  (** branches issued per cycle (Table 1: 1 slot) *)
}

val latency : Insn.op -> int
(** Table 1 instruction latencies. *)

val make : ?branch_slots:int -> issue:int -> unit -> t

val issue_1 : t

val issue_2 : t

val issue_4 : t

val issue_8 : t

val unlimited : t
(** Effectively infinite issue width, as assumed in the paper's worked
    examples. *)

val table1_rows : (string * int) list
(** The rows of Table 1, for the benchmark harness. *)
