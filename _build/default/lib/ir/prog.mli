(** Whole programs. A program carries its own array contents so that it is
    a closed, simulatable object; [outputs] are the scalar observables used
    to check that transformations preserve semantics. *)

type ainit = IInit of int array | FInit of float array

type adecl = { aname : string; acls : Reg.cls; asize : int; ainit : ainit }

type ctx = {
  rgen : Reg.gen;
  mutable next_insn : int;
  mutable next_label : int;
  mutable next_loop : int;
}

type t = {
  arrays : adecl list;
  entry : Block.t;
  ctx : ctx;
  outputs : (string * Reg.t) list;
}

val make_ctx : unit -> ctx

val fresh_reg : t -> Reg.cls -> Reg.t

val fresh_insn_id : ctx -> int

val fresh_label : ctx -> string -> string

val fresh_loop_id : ctx -> int

val find_array : t -> string -> adecl option

val with_entry : t -> Block.t -> t

val insn_count : t -> int

val array_bytes : adecl -> int
