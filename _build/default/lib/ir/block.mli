(** Structured code. Loop control flow is carried by explicit branch
    instructions targeting the loop's [head] and [exit_lbl] labels; the
    [Loop] structure only marks loop extents for the optimizer. *)

type loop_meta = {
  counter : Reg.t option;  (** loop counter register *)
  step : int option;  (** constant increment of the counter *)
  limit : Operand.t option;  (** loop-invariant bound tested by the back-branch *)
  trip : int option;  (** compile-time trip count, if known *)
  latch : string option;  (** label of the increment-and-test tail *)
  unrolled : int;  (** unroll factor already applied (1 = not unrolled) *)
}

type item = Ins of Insn.t | Lbl of string | Loop of loop

and t = item list

and loop = { lid : int; head : string; exit_lbl : string; meta : loop_meta; body : t }

val no_meta : loop_meta

val insns : t -> Insn.t list
(** All instructions in program order, descending into loops. *)

val loops : t -> loop list
(** All loops, outer before inner. *)

val is_innermost : loop -> bool

val body_insns : loop -> Insn.t list
(** Instructions of an innermost loop body (labels elided). *)

val map_innermost : (loop -> loop) -> t -> t
(** Rewrite every innermost loop. *)

val map_loops : (loop -> loop) -> t -> t
(** Rewrite every loop, inner loops first. *)

val iter_insns : (Insn.t -> unit) -> t -> unit

val map_insns : (Insn.t -> Insn.t) -> t -> t

val concat_map_insns : (Insn.t -> Insn.t list) -> t -> t

val find_loop : t -> int -> loop option
