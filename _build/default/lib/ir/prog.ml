(* Whole programs: array declarations (with initial contents so that a
   program is a closed, simulatable object), an entry block, fresh-name
   generators, and named scalar outputs used to validate that
   transformations preserve semantics. *)

type ainit = IInit of int array | FInit of float array

type adecl = { aname : string; acls : Reg.cls; asize : int; ainit : ainit }

type ctx = {
  rgen : Reg.gen;
  mutable next_insn : int;
  mutable next_label : int;
  mutable next_loop : int;
}

type t = {
  arrays : adecl list;
  entry : Block.t;
  ctx : ctx;
  outputs : (string * Reg.t) list;
}

let make_ctx () =
  { rgen = Reg.make_gen (); next_insn = 1; next_label = 1; next_loop = 1 }

let fresh_reg p cls = Reg.fresh p.ctx.rgen cls

let fresh_insn_id ctx =
  let id = ctx.next_insn in
  ctx.next_insn <- ctx.next_insn + 1;
  id

let fresh_label ctx prefix =
  let n = ctx.next_label in
  ctx.next_label <- ctx.next_label + 1;
  Printf.sprintf "%s%d" prefix n

let fresh_loop_id ctx =
  let n = ctx.next_loop in
  ctx.next_loop <- ctx.next_loop + 1;
  n

let find_array p name = List.find_opt (fun a -> a.aname = name) p.arrays

let with_entry p entry = { p with entry }

let insn_count p = List.length (Block.insns p.entry)

(* Declared byte size of an array (one word = 4 address units). *)
let array_bytes a = a.asize * 4
