(** Copy and constant propagation: a forward pass per block, resetting
    conservatively at labels and nested loops. *)

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
