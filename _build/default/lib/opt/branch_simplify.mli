(** Control-flow peepholes: inverted-branch canonicalization
    ([br c X; jmp L; X:] becomes [br !c L; X:]) and removal of
    unreferenced labels (latch labels are kept as structural anchors). *)

val negate : Impact_ir.Insn.cmp -> Impact_ir.Insn.cmp

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
