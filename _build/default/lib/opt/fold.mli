(** Constant folding, algebraic simplification and constant-condition
    branch resolution ("operation folding"). *)

val simplify_insn :
  Impact_ir.Prog.ctx -> Impact_ir.Insn.t -> Impact_ir.Insn.t list

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
