(* The conventional-optimization pipeline (the paper's "Conv" level): a
   complete set of classical local, global and loop transformations.
   Cleanup passes are iterated to a fixpoint between the structural
   passes. *)

let cleanup (p : Impact_ir.Prog.t) : Impact_ir.Prog.t =
  let round p = Dce.run (Cse.run (Propagate.run (Fold.run p))) in
  Walk.fixpoint ~max_rounds:6 round p

let run (p : Impact_ir.Prog.t) : Impact_ir.Prog.t =
  p
  |> Branch_simplify.run
  |> cleanup
  |> Licm.run
  |> cleanup
  |> Ivopt.reduce
  |> cleanup
  |> Ivopt.eliminate
  |> cleanup
  |> Branch_simplify.run
