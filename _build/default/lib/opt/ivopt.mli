(** Loop induction-variable strength reduction and elimination (both in
    the paper's conventional-optimization list): affine subscript
    arithmetic becomes derived induction registers stepped in the latch
    region, and the loop exit test moves onto a derived register when
    the original counter has no other uses. *)

val materialize :
  Impact_ir.Prog.ctx ->
  Impact_analysis.Linval.lin ->
  Impact_ir.Insn.t list * Impact_ir.Operand.t
(** Emit code computing a linear value from its key registers/labels. *)

val reduce : Impact_ir.Prog.t -> Impact_ir.Prog.t

val eliminate : Impact_ir.Prog.t -> Impact_ir.Prog.t

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
