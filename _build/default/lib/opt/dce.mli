(** Global dead-code elimination: mark-and-sweep (removing self-feeding
    dead cycles such as orphaned induction variables) plus
    liveness-based rounds. *)

val mark_sweep : Impact_ir.Prog.t -> Impact_ir.Prog.t

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
