(** The conventional-optimization pipeline (the paper's "Conv" level): a
    complete set of classical local, global and loop transformations. *)

val cleanup : Impact_ir.Prog.t -> Impact_ir.Prog.t
(** The folding/propagation/CSE/DCE subset iterated to a fixpoint, used
    between structural passes and after the ILP transformations. *)

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
