(** Loop-invariant code motion for innermost loops: speculatable
    instructions with invariant operands move to the preheader (after
    the zero-trip guard); loads additionally require that no store in
    the loop can touch the same array. *)

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
