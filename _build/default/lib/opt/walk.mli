(** Traversal helpers shared by the optimizer passes. *)

open Impact_ir

val rewrite_blocks : (Block.t -> Block.t) -> Prog.t -> Prog.t
(** Apply a block rewriter to the entry block and every loop body,
    innermost first. *)

val rewrite_innermost : (Block.loop -> Block.loop) -> Prog.t -> Prog.t

val rewrite_innermost_with_preheader :
  (Block.item list -> Block.loop -> Block.item list) -> Prog.t -> Prog.t
(** Rewrite each innermost loop together with the items preceding it in
    its parent block (the preheader region); the callback returns the
    replacement items for both. *)

val insns_equal_prog : Prog.t -> Prog.t -> bool
(** Structural equality of the printed instruction streams. *)

val fixpoint : ?max_rounds:int -> (Prog.t -> Prog.t) -> Prog.t -> Prog.t
