(** Local common-subexpression elimination, redundant-load elimination
    and store-to-load forwarding. Memory knowledge is syntactic; a store
    invalidates loads unless the base labels prove disjointness. *)

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
