lib/opt/ivopt.mli: Impact_analysis Impact_ir
