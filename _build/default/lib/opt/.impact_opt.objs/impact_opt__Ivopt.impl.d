lib/opt/ivopt.ml: Array Block Build Dom Hashtbl Impact_analysis Impact_ir Insn Linval List Operand Option Prog Reg Sb Walk
