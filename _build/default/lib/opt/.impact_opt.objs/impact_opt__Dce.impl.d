lib/opt/dce.ml: Array Block Flatten Hashtbl Impact_analysis Impact_ir Insn List Liveness Option Prog Queue Reg Walk
