lib/opt/propagate.mli: Impact_ir
