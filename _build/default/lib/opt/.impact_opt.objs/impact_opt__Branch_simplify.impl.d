lib/opt/branch_simplify.ml: Array Block Build Hashtbl Impact_ir Insn List Option Prog Walk
