lib/opt/walk.mli: Block Impact_ir Prog
