lib/opt/conv.mli: Impact_ir
