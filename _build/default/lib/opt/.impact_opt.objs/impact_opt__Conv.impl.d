lib/opt/conv.ml: Branch_simplify Cse Dce Fold Impact_ir Ivopt Licm Propagate Walk
