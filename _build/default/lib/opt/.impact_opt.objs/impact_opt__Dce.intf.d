lib/opt/dce.mli: Impact_ir
