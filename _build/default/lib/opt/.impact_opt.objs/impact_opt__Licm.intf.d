lib/opt/licm.mli: Impact_ir
