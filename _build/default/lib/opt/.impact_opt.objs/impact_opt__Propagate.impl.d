lib/opt/propagate.ml: Array Block Hashtbl Impact_ir Insn List Operand Prog Reg Walk
