lib/opt/cse.ml: Array Block Build Hashtbl Impact_ir Insn List Operand Printf Prog Reg String Walk
