lib/opt/cse.mli: Impact_ir
