lib/opt/fold.mli: Impact_ir
