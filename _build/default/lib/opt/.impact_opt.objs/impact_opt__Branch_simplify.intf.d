lib/opt/branch_simplify.mli: Impact_ir
