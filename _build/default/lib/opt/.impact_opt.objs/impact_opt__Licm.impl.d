lib/opt/licm.ml: Array Block Classify Hashtbl Impact_analysis Impact_ir Insn List Operand Option Prog Reg Sb Walk
