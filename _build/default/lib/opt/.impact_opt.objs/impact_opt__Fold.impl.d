lib/opt/fold.ml: Array Block Build Impact_ir Insn Operand Option Prog Reg
