lib/opt/walk.ml: Block Impact_ir Insn List Prog
