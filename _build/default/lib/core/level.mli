(** The five cumulative transformation levels of the paper's evaluation
    (Section 3.2): Conv, then + unrolling (Lev1), + renaming (Lev2),
    + combining/strength/tree-height (Lev3), + the expansions (Lev4). *)

open Impact_ir

type t = Conv | Lev1 | Lev2 | Lev3 | Lev4

val all : t list

val to_string : t -> string

val of_string : string -> t option

val rank : t -> int

val includes : t -> t -> bool
(** [includes a b]: level [a] applies everything [b] does. *)

val cleanup : Prog.t -> Prog.t

val apply_custom :
  ?unroll_factor:int ->
  unroll:bool ->
  accum:bool ->
  ind:bool ->
  search:bool ->
  rename:bool ->
  combine:bool ->
  strength:bool ->
  thr:bool ->
  Prog.t ->
  Prog.t
(** Pipeline with individual transformations switchable (used by the
    leave-one-out ablation benchmarks). *)

val apply : ?unroll_factor:int -> t -> Prog.t -> Prog.t
