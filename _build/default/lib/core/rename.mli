(** Register renaming (paper Section 2, Figure 1d): within each loop
    body, every definition of a multiply-defined register except the
    last gets a fresh register and intervening uses are rewritten; the
    last definition keeps the original name so loop-carried values stay
    consistent. Definitions under internal guards are left alone. *)

val rename_loop : Impact_ir.Prog.ctx -> Impact_ir.Block.loop -> Impact_ir.Block.loop

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
