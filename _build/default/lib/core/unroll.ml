(* Loop unrolling with a preconditioning loop (paper Section 2).

   A loop unrolled N times gets N-1 copies of its body appended; the
   control transfers of the intermediate copies are removed. Because all
   the paper's loops have iteration counts known on loop entry, a
   preconditioning loop first executes [trip mod N] iterations so that the
   main unrolled loop's original exit test only needs checking once per N
   iterations.

   When the trip count is a compile-time constant the preconditioning
   bookkeeping folds away; otherwise it is computed at run time in the
   preheader (one divide and one remainder, amortized over the loop). *)

open Impact_ir
open Impact_analysis

let default_factor = 8

(* Unrolled bodies are capped, mirroring the paper's "maximum loop body
   size" limit. *)
let max_body_insns = 220

(* Copy the body once with fresh instruction ids, renaming local labels
   and retargeting internal branches; the back-branch is dropped (the
   preconditioning loop supplies its own countdown branch). Returns the
   items and the label map. *)
let copy_body ctx (sb : Sb.t) : Block.item list * (string, string) Hashtbl.t =
  let lmap = Hashtbl.create 8 in
  let rename_label l =
    match Hashtbl.find_opt lmap l with
    | Some l' -> l'
    | None ->
      let l' = Prog.fresh_label ctx "U" in
      Hashtbl.replace lmap l l';
      l'
  in
  Array.iter
    (function Block.Lbl l -> ignore (rename_label l) | Block.Ins _ | Block.Loop _ -> ())
    sb.Sb.items;
  let items =
    Array.to_list sb.Sb.items
    |> List.filter_map (fun item ->
         match item with
         | Block.Lbl l -> Some (Block.Lbl (rename_label l))
         | Block.Loop _ -> invalid_arg "Unroll.copy_body: nested loop"
         | Block.Ins i ->
           if Sb.is_back_branch sb i then None
           else
             let target =
               match i.Insn.target with
               | Some t when Hashtbl.mem lmap t -> Some (Hashtbl.find lmap t)
               | other -> other
             in
             Some (Block.Ins { (Build.clone ctx i) with Insn.target }))
  in
  (items, lmap)

let unroll_loop ctx ~factor (pre : Block.item list) (l : Block.loop)
    : Block.item list =
  let keep () = pre @ [ Block.Loop l ] in
  let meta = l.Block.meta in
  match meta.Block.counter, meta.Block.step, meta.Block.latch with
  | Some counter, Some step, Some latch_lbl -> (
    let sb = Sb.of_loop l in
    let body_size = List.length (Sb.insn_positions sb) in
    let factor = min factor (max 1 (max_body_insns / max 1 body_size)) in
    let factor =
      match meta.Block.trip with Some t when t > 0 -> min factor t | _ -> factor
    in
    if factor < 2 then keep ()
    else
      match Dom.end_position sb with
      | None -> keep ()
      | Some bpos -> (
        match Sb.insn sb bpos with
        | Some bi when Sb.is_back_branch sb bi -> (
          match bi.Insn.op with
          | Insn.Br (Reg.Int, (Insn.Le | Insn.Ge)) -> (
            let limit = bi.Insn.srcs.(1) in
            let cmp = (match bi.Insn.op with Insn.Br (_, c) -> c | _ -> assert false) in
            (* Static trip-count split when known. *)
            let tpre_static, tmain_static =
              match meta.Block.trip with
              | Some t ->
                let tm = t - (t mod factor) in
                if tm < factor then (None, None)
                else (Some (t mod factor), Some tm)
              | None -> (None, None)
            in
            if meta.Block.trip <> None && tmain_static = None then keep ()
            else begin
              let items = ref [] in
              let emit_i i = items := Block.Ins i :: !items in
              let emit x = items := x :: !items in
              (* --- Preconditioning loop --- *)
              let make_precond (count_op : Operand.t) =
                let cnt = Reg.fresh ctx.Prog.rgen Reg.Int in
                emit_i (Build.imov ctx cnt count_op);
                let plid = Prog.fresh_loop_id ctx in
                let phead = Printf.sprintf "L%dp" plid in
                let pexit = Printf.sprintf "X%dp" plid in
                (* Guard: skip when no preconditioning iterations. *)
                (match count_op with
                | Operand.Int n when n > 0 -> ()
                | _ ->
                  emit_i (Build.br ctx Reg.Int Insn.Le (Operand.Reg cnt) (Operand.Int 0) pexit));
                let body_items, _ = copy_body ctx sb in
                let dec = Build.ib ctx Insn.Sub cnt (Operand.Reg cnt) (Operand.Int 1) in
                let bb =
                  Build.br ctx Reg.Int Insn.Gt (Operand.Reg cnt) (Operand.Int 0) phead
                in
                let pbody = body_items @ [ Block.Ins dec; Block.Ins bb ] in
                let pmeta =
                  {
                    Block.counter = Some cnt;
                    step = Some (-1);
                    limit = Some (Operand.Int 0);
                    trip = (match count_op with Operand.Int n -> Some n | _ -> None);
                    latch = None;
                    unrolled = 1;
                  }
                in
                emit
                  (Block.Loop
                     { Block.lid = plid; head = phead; exit_lbl = pexit; meta = pmeta;
                       body = pbody })
              in
              (match tpre_static with
              | Some 0 -> ()
              | Some t -> make_precond (Operand.Int t)
              | None ->
                (* Runtime: trip = (limit - counter) / step + 1;
                   tpre = trip mod factor. *)
                let d = Reg.fresh ctx.Prog.rgen Reg.Int in
                let q = Reg.fresh ctx.Prog.rgen Reg.Int in
                let t = Reg.fresh ctx.Prog.rgen Reg.Int in
                let tp = Reg.fresh ctx.Prog.rgen Reg.Int in
                emit_i (Build.ib ctx Insn.Sub d limit (Operand.Reg counter));
                emit_i (Build.ib ctx Insn.Div q (Operand.Reg d) (Operand.Int step));
                emit_i (Build.ib ctx Insn.Add t (Operand.Reg q) (Operand.Int 1));
                emit_i (Build.ib ctx Insn.Rem tp (Operand.Reg t) (Operand.Int factor));
                make_precond (Operand.Reg tp));
              (* Guard before the main loop when the remaining trip count
                 could be zero. *)
              (match tmain_static with
              | Some _ -> ()
              | None ->
                let guard_cmp = match cmp with Insn.Le -> Insn.Gt | _ -> Insn.Lt in
                emit_i
                  (Build.br ctx Reg.Int guard_cmp (Operand.Reg counter) limit
                     l.Block.exit_lbl));
              (* --- Main unrolled loop --- *)
              let copies = ref [] in
              let last_latch = ref latch_lbl in
              for k = 0 to factor - 1 do
                let keep_back = k = factor - 1 in
                let lmap = Hashtbl.create 8 in
                let rename_label lab =
                  match Hashtbl.find_opt lmap lab with
                  | Some x -> x
                  | None ->
                    let x = Prog.fresh_label ctx "U" in
                    Hashtbl.replace lmap lab x;
                    x
                in
                Array.iter
                  (function
                    | Block.Lbl lab -> ignore (rename_label lab)
                    | Block.Ins _ | Block.Loop _ -> ())
                  sb.Sb.items;
                let copy =
                  Array.to_list sb.Sb.items
                  |> List.filter_map (fun item ->
                       match item with
                       | Block.Lbl lab -> Some (Block.Lbl (rename_label lab))
                       | Block.Loop _ -> None
                       | Block.Ins i ->
                         if Sb.is_back_branch sb i then
                           if keep_back then Some (Block.Ins (Build.clone ctx i))
                           else None
                         else
                           let target =
                             match i.Insn.target with
                             | Some tl when Hashtbl.mem lmap tl ->
                               Some (Hashtbl.find lmap tl)
                             | other -> other
                           in
                           Some (Block.Ins { (Build.clone ctx i) with Insn.target }))
                in
                if keep_back then
                  last_latch :=
                    Option.value ~default:!last_latch (Hashtbl.find_opt lmap latch_lbl);
                copies := !copies @ copy
              done;
              let main_meta =
                {
                  meta with
                  Block.latch = Some !last_latch;
                  unrolled = factor;
                  trip = tmain_static;
                }
              in
              emit (Block.Loop { l with Block.meta = main_meta; body = !copies });
              pre @ List.rev !items
            end)
          | _ -> keep ())
        | _ -> keep ()))
  | _ -> keep ()

let run ?(factor = default_factor) (p : Prog.t) : Prog.t =
  Impact_opt.Walk.rewrite_innermost_with_preheader (unroll_loop p.Prog.ctx ~factor) p
