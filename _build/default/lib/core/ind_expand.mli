(** Induction variable expansion (paper Figure 4): k increments of an
    induction register give k+1 temporary induction registers
    initialized to V + p*m; references are remapped by region, the
    original increments disappear, and all temporaries are bumped by k*m
    before each branch back to the loop start. *)

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
