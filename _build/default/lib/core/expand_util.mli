(** Placement helper shared by the expansion transformations: their
    initialization code must execute even when a zero-remaining-trip
    guard skips the loop, so the matching exit code is an identity. *)

val insert_before_guard :
  Impact_ir.Block.item list ->
  exit_lbl:string ->
  Impact_ir.Insn.t list ->
  Impact_ir.Block.item list
