(** Operation combining (paper Section 2, after Nakatani & Ebcioglu):
    a flow dependence between two instructions with compile-time
    constant operands is eliminated by substituting the producer's
    non-constant operand into the consumer and folding the constants.
    Integer add/sub feed add/sub/compare/branch/load/store (memory
    consumers absorb the constant into their displacement); integer
    multiplies feed multiplies; FP add/sub feed add/sub/compare/branch;
    FP mul/div feed mul/div. Self-feeding producers exchange position
    with an adjacent non-branch consumer. *)

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
