(* The five cumulative transformation levels of the paper's evaluation
   (Section 3.2):

     Conv  conventional scalar optimizations
     Lev1  + loop unrolling
     Lev2  + register renaming
     Lev3  + operation combining, strength reduction, tree height reduction
     Lev4  + accumulator / induction / search variable expansion

   Within a level the passes are ordered so each sees the code shape it
   expects: the expansion transformations run on the raw unrolled body
   (where an induction variable still has k identical increments, as in
   the paper's Figure 4), and renaming runs after them. *)

open Impact_ir

type t = Conv | Lev1 | Lev2 | Lev3 | Lev4

let all = [ Conv; Lev1; Lev2; Lev3; Lev4 ]

let to_string = function
  | Conv -> "Conv"
  | Lev1 -> "Lev1"
  | Lev2 -> "Lev2"
  | Lev3 -> "Lev3"
  | Lev4 -> "Lev4"

let of_string = function
  | "conv" | "Conv" -> Some Conv
  | "lev1" | "Lev1" -> Some Lev1
  | "lev2" | "Lev2" -> Some Lev2
  | "lev3" | "Lev3" -> Some Lev3
  | "lev4" | "Lev4" -> Some Lev4
  | _ -> None

let rank = function Conv -> 0 | Lev1 -> 1 | Lev2 -> 2 | Lev3 -> 3 | Lev4 -> 4

let includes a b = rank a >= rank b

let cleanup = Impact_opt.Conv.cleanup

(* Custom pipeline with individual transformations switchable; used by the
   level pipeline and by the leave-one-out ablation benchmarks. *)
let apply_custom ?unroll_factor ~unroll ~accum ~ind ~search ~rename ~combine
    ~strength ~thr (p : Prog.t) : Prog.t =
  let p = Impact_opt.Conv.run p in
  if not unroll then p
  else begin
    let p = Unroll.run ?factor:unroll_factor p in
    let p = cleanup p in
    let p = if accum then Accum_expand.run p else p in
    let p = if ind then Ind_expand.run p else p in
    let p = if search then Search_expand.run p else p in
    let p = if rename then Rename.run p else p in
    let p = if combine then Combine.run p else p in
    let p = if strength then Strength.run p else p in
    let p = if thr then Tree_height.run p else p in
    cleanup p
  end

let apply ?unroll_factor (level : t) (p : Prog.t) : Prog.t =
  let r = rank level in
  apply_custom ?unroll_factor ~unroll:(r >= 1) ~accum:(r >= 4) ~ind:(r >= 4)
    ~search:(r >= 4) ~rename:(r >= 2) ~combine:(r >= 3) ~strength:(r >= 3)
    ~thr:(r >= 3) p
