(* End-to-end compilation and measurement driver: transformation level,
   superblock formation, list scheduling for the target machine, then
   execution-driven simulation and register-usage measurement. *)

open Impact_ir

type measurement = {
  level : Level.t;
  machine : Machine.t;
  cycles : int;
  dyn_insns : int;
  usage : Impact_regalloc.Regalloc.usage;
  result : Impact_sim.Sim.result;
}

let compile ?unroll_factor (level : Level.t) (machine : Machine.t) (p : Prog.t) :
    Prog.t =
  let p = Level.apply ?unroll_factor level p in
  let p = Impact_sched.Superblock.run p in
  Impact_sched.List_sched.run machine p

let measure ?unroll_factor ?fuel (level : Level.t) (machine : Machine.t)
    (p : Prog.t) : measurement =
  let compiled = compile ?unroll_factor level machine p in
  let result = Impact_sim.Sim.run ?fuel machine compiled in
  let usage = Impact_regalloc.Regalloc.measure compiled in
  {
    level;
    machine;
    cycles = result.Impact_sim.Sim.cycles;
    dyn_insns = result.Impact_sim.Sim.dyn_insns;
    usage;
    result;
  }

(* Speedup of a measurement against the paper's base configuration: an
   issue-1 processor with conventional optimizations. *)
let speedup ~base ~this = float_of_int base.cycles /. float_of_int this.cycles
