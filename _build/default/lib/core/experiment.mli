(** The paper's evaluation harness (Section 3): compile each loop nest
    at each level, simulate on each machine, aggregate speedups (vs. the
    issue-1 Conv base) and register usage into the distributions of
    Figures 8-15. *)

open Impact_ir

type subject = {
  sname : string;
  group : string;  (** "doall" | "doacross" | "serial" *)
  ast : Impact_fir.Ast.program;
}

type cell = {
  subject : subject;
  level : Level.t;
  machine : Machine.t;
  cycles : int;
  dyn_insns : int;
  speedup : float;
  int_regs : int;
  float_regs : int;
}

val total_regs : cell -> int

val run_subject :
  ?unroll_factor:int -> Machine.t list -> Level.t list -> subject -> cell list

val run_all :
  ?unroll_factor:int ->
  ?progress:(string -> unit) ->
  Machine.t list ->
  Level.t list ->
  subject list ->
  cell list

val filter_cells :
  ?group:string -> ?level:Level.t -> ?machine:Machine.t -> cell list -> cell list
(** [~group:"non-doall"] selects everything that is not DOALL. *)

val average : (cell -> float) -> cell list -> float

val avg_speedup : cell list -> float

val avg_regs : cell list -> float

val histogram : bounds:float list -> (cell -> float) -> cell list -> int array

val fig8_bounds : float list

val fig8_labels : string list

val fig9_bounds : float list

val fig9_labels : string list

val fig10_bounds : float list

val fig10_labels : string list

val reg_bounds : float list

val reg_labels : string list

val speedup_distribution :
  ?group:string -> bounds:float list -> Machine.t -> cell list ->
  (Level.t * int array) list

val register_distribution :
  ?group:string -> Machine.t -> cell list -> (Level.t * int array) list
