lib/core/unroll.mli: Impact_ir
