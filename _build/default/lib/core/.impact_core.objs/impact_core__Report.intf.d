lib/core/report.mli: Experiment Level
