lib/core/tree_height.ml: Array Block Build Hashtbl Impact_ir Impact_opt Insn List Machine Operand Option Prog Reg
