lib/core/tree_height.mli: Impact_ir
