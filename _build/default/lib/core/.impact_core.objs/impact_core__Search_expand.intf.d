lib/core/search_expand.mli: Impact_ir
