lib/core/accum_expand.ml: Array Block Build Expand_util Hashtbl Impact_analysis Impact_ir Impact_opt Insn List Operand Option Prog Reg Sb
