lib/core/experiment.mli: Impact_fir Impact_ir Level Machine
