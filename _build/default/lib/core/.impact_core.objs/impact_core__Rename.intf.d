lib/core/rename.mli: Impact_ir
