lib/core/report.ml: Array Buffer Experiment Impact_ir Level List Printf String
