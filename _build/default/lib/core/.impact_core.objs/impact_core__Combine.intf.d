lib/core/combine.mli: Impact_ir
