lib/core/compile.ml: Impact_ir Impact_regalloc Impact_sched Impact_sim Level Machine Prog
