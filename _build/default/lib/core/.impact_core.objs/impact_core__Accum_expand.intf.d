lib/core/accum_expand.mli: Impact_ir
