lib/core/unroll.ml: Array Block Build Dom Hashtbl Impact_analysis Impact_ir Impact_opt Insn List Operand Option Printf Prog Reg Sb
