lib/core/combine.ml: Array Block Build Dom Hashtbl Impact_analysis Impact_ir Insn List Operand Option Prog Reg Sb
