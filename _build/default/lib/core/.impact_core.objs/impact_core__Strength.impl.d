lib/core/strength.ml: Array Block Build Hashtbl Impact_ir Insn List Machine Operand Prog Reg
