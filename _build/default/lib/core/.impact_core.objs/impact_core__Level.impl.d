lib/core/level.ml: Accum_expand Combine Impact_ir Impact_opt Ind_expand Prog Rename Search_expand Strength Tree_height Unroll
