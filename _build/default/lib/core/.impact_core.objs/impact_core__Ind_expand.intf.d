lib/core/ind_expand.mli: Impact_ir
