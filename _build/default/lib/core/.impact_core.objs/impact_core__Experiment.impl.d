lib/core/experiment.ml: Array Compile Impact_fir Impact_ir Impact_regalloc Level List Machine
