lib/core/level.mli: Impact_ir Prog
