lib/core/expand_util.ml: Block Impact_ir Insn List
