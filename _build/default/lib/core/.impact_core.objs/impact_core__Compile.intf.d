lib/core/compile.mli: Impact_ir Impact_regalloc Impact_sim Level Machine Prog
