lib/core/expand_util.mli: Impact_ir
