lib/core/strength.mli: Impact_ir
