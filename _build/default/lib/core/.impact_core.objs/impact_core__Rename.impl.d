lib/core/rename.ml: Array Block Dom Hashtbl Impact_analysis Impact_ir Insn List Operand Option Prog Reg Sb
