(** Loop unrolling with a preconditioning loop (paper Section 2): N-1
    body copies appended, intermediate control transfers removed, the
    first [trip mod N] iterations run by a preconditioning loop so the
    main loop's exit test fires once per N iterations. Compile-time trip
    counts fold the bookkeeping away; runtime counts are computed in the
    preheader. *)

val default_factor : int
(** 8, the paper's maximum unroll factor. *)

val max_body_insns : int
(** Unrolled-body size cap, mirroring the paper's "maximum loop body
    size" limit. *)

val run : ?factor:int -> Impact_ir.Prog.t -> Impact_ir.Prog.t
