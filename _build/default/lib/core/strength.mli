(** Strength reduction (paper Section 2): integer multiplies by
    compile-time constants become shift/add sequences when the
    sequence's critical path beats the multiply latency on a wide
    machine (powers of two, two-set-bit constants, 2^k - 1). Division
    and remainder by powers of two become shifts/masks when the dividend
    is provably non-negative (the paper's suggested extension for
    superscalar targets). *)

val expand_mul :
  Impact_ir.Prog.ctx ->
  Impact_ir.Reg.t ->
  Impact_ir.Operand.t ->
  int ->
  Impact_ir.Insn.t list option

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
