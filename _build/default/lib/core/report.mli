(** Text rendering of the paper's tables and figures. *)

val distribution_table :
  title:string -> labels:string list -> (Level.t * int array) list -> string

val averages_row : title:string -> (Level.t -> float) -> string

val table1 : unit -> string

val cells_csv : Experiment.cell list -> string
