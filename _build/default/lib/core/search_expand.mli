(** Search variable expansion (paper Section 2): each guarded
    min/max-style update site gets its own temporary search register
    (initialized to the original); the temporaries are combined back at
    loop exit with the same guarded-move pattern, removing the chain of
    flow dependences between successive tests. *)

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
