(** Accumulator variable expansion (paper Figure 2): each of the k
    accumulation instructions of an accumulator register gets its own
    temporary accumulator (first initialized to the original, the rest
    to zero); the temporaries are summed back at loop exit. Removes all
    flow/anti/output dependences between the accumulations, at the cost
    of reordering the floating-point reduction. *)

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
