(** End-to-end compilation and measurement: transformation level,
    superblock formation, list scheduling, then execution-driven
    simulation and register-usage measurement. *)

open Impact_ir

type measurement = {
  level : Level.t;
  machine : Machine.t;
  cycles : int;
  dyn_insns : int;
  usage : Impact_regalloc.Regalloc.usage;
  result : Impact_sim.Sim.result;
}

val compile : ?unroll_factor:int -> Level.t -> Machine.t -> Prog.t -> Prog.t

val measure :
  ?unroll_factor:int -> ?fuel:int -> Level.t -> Machine.t -> Prog.t -> measurement

val speedup : base:measurement -> this:measurement -> float
(** Speedup against the paper's base configuration (issue-1, Conv). *)
