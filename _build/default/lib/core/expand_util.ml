(* Shared placement helper for the expansion transformations.

   Expansion preheader code (temporary initializations) must execute even
   when a zero-remaining-trip guard skips the loop, because the matching
   exit code (summations / combines) sits at the loop exit, which is the
   guard's target. Initializing first makes the exit code an identity when
   the loop body never runs. *)

open Impact_ir

(* Insert [code] into [pre] before a trailing guard branch that targets
   [exit_lbl]; appends at the end when no such guard exists. *)
let insert_before_guard (pre : Block.item list) ~(exit_lbl : string)
    (code : Insn.t list) : Block.item list =
  let items = List.map (fun i -> Block.Ins i) code in
  match List.rev pre with
  | Block.Ins i :: rev_rest
    when Insn.is_cond_branch i && i.Insn.target = Some exit_lbl ->
    List.rev rev_rest @ items @ [ Block.Ins i ]
  | _ -> pre @ items
