(** Tree height reduction (paper Section 2, Figure 7), after Baer-Bovet:
    maximal single-use chains of associative arithmetic are flattened
    and rebuilt balanced (earliest-ready-first), with denominators
    divided into one numerator early so the long divide overlaps the
    multiply tree. Only associativity/commutativity are used. Chains are
    rebuilt only when the critical path strictly improves. *)

val run : Impact_ir.Prog.t -> Impact_ir.Prog.t
