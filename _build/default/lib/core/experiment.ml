(* The paper's evaluation harness (Section 3): compile each loop nest at
   each transformation level, simulate on each machine configuration, and
   aggregate speedups (vs. the issue-1 Conv base configuration) and
   register usage. *)

open Impact_ir

type subject = {
  sname : string;
  group : string;  (* "doall" | "doacross" | "serial" *)
  ast : Impact_fir.Ast.program;
}

type cell = {
  subject : subject;
  level : Level.t;
  machine : Machine.t;
  cycles : int;
  dyn_insns : int;
  speedup : float;
  int_regs : int;
  float_regs : int;
}

let total_regs c = c.int_regs + c.float_regs

(* Run one subject across levels and machines. *)
let run_subject ?unroll_factor (machines : Machine.t list) (levels : Level.t list)
    (s : subject) : cell list =
  let lower () = Impact_fir.Lower.lower s.ast in
  let base = Compile.measure ?unroll_factor Level.Conv Machine.issue_1 (lower ()) in
  List.concat_map
    (fun machine ->
      List.map
        (fun level ->
          let m = Compile.measure ?unroll_factor level machine (lower ()) in
          {
            subject = s;
            level;
            machine;
            cycles = m.Compile.cycles;
            dyn_insns = m.Compile.dyn_insns;
            speedup = Compile.speedup ~base ~this:m;
            int_regs = m.Compile.usage.Impact_regalloc.Regalloc.int_used;
            float_regs = m.Compile.usage.Impact_regalloc.Regalloc.float_used;
          })
        levels)
    machines

let run_all ?unroll_factor ?(progress = fun _ -> ())
    (machines : Machine.t list) (levels : Level.t list) (subjects : subject list) :
    cell list =
  List.concat_map
    (fun s ->
      progress s.sname;
      run_subject ?unroll_factor machines levels s)
    subjects

(* ---- Aggregation ---- *)

let filter_cells ?group ?level ?machine (cells : cell list) =
  List.filter
    (fun c ->
      (match group with
      | Some g -> (if g = "non-doall" then c.subject.group <> "doall" else c.subject.group = g)
      | None -> true)
      && (match level with Some l -> c.level = l | None -> true)
      && match machine with Some m -> c.machine.Machine.name = m.Machine.name | None -> true)
    cells

let average f cells =
  match cells with
  | [] -> nan
  | _ -> List.fold_left (fun acc c -> acc +. f c) 0.0 cells /. float_of_int (List.length cells)

let avg_speedup cells = average (fun c -> c.speedup) cells

let avg_regs cells = average (fun c -> float_of_int (total_regs c)) cells

(* Histogram of [f] over cells using right-open bins given by their lower
   bounds; the last bin is unbounded. *)
let histogram ~(bounds : float list) (f : cell -> float) (cells : cell list) : int array
    =
  let bounds = Array.of_list bounds in
  let counts = Array.make (Array.length bounds) 0 in
  List.iter
    (fun c ->
      let x = f c in
      let bin = ref 0 in
      Array.iteri (fun k b -> if x >= b then bin := k) bounds;
      counts.(!bin) <- counts.(!bin) + 1)
    cells;
  counts

(* The paper's figure bin boundaries. *)

let fig8_bounds = [ 0.0; 1.25; 1.5; 1.75; 2.0; 2.5; 3.0 ]

let fig8_labels =
  [ "0.00-1.24"; "1.25-1.49"; "1.50-1.74"; "1.75-1.99"; "2.00-2.49"; "2.50-2.99"; "3.00+" ]

let fig9_bounds = [ 0.0; 1.5; 2.0; 2.5; 3.0; 3.5; 4.0; 5.0; 6.0 ]

let fig9_labels =
  [
    "0.00-1.49"; "1.50-1.99"; "2.00-2.49"; "2.50-2.99"; "3.00-3.49"; "3.50-3.99";
    "4.00-4.99"; "5.00-5.99"; "6.00+";
  ]

let fig10_bounds = [ 0.0; 2.0; 2.5; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 ]

let fig10_labels =
  [
    "0.00-1.99"; "2.00-2.49"; "2.50-2.99"; "3.00-3.99"; "4.00-4.99"; "5.00-5.99";
    "6.00-6.99"; "7.00-7.99"; "8.00+";
  ]

let reg_bounds = [ 0.0; 16.0; 32.0; 48.0; 64.0; 96.0; 128.0 ]

let reg_labels = [ "0-15"; "16-31"; "32-47"; "48-63"; "64-95"; "96-127"; "128+" ]

(* Speedup distribution for a machine (per level). *)
let speedup_distribution ?group ~bounds machine cells :
    (Level.t * int array) list =
  List.map
    (fun level ->
      let cs = filter_cells ?group ~level ~machine cells in
      (level, histogram ~bounds (fun c -> c.speedup) cs))
    Level.all

let register_distribution ?group machine cells : (Level.t * int array) list =
  List.map
    (fun level ->
      let cs = filter_cells ?group ~level ~machine cells in
      (level, histogram ~bounds:reg_bounds (fun c -> float_of_int (total_regs c)) cs))
    Level.all
