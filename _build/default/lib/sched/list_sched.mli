(** Superblock list scheduling: dependence-height priority, issue-width
    and branch-slot resources, speculative upward motion of non-excepting
    instructions past side exits (per the dependence graph's rules). *)

open Impact_ir
open Impact_analysis

type result = {
  items : Block.item list;  (** reordered segment *)
  makespan : int;  (** schedule length in cycles *)
  issue_time : (int * int) list;  (** (instruction id, cycle) in emission order *)
}

val schedule_segment :
  Machine.t ->
  live_at_target:(Insn.t -> Reg.Set.t option) ->
  ?pre_env:Linval.lin Reg.Map.t ->
  Insn.t array ->
  result

val schedule_body :
  Machine.t ->
  live_at_target:(Insn.t -> Reg.Set.t option) ->
  ?pre_env:Linval.lin Reg.Map.t ->
  Block.t ->
  Block.t
(** Split a body into label-delimited segments and schedule each. *)

val run : Machine.t -> Prog.t -> Prog.t
(** Schedule every innermost loop body. Superblock formation should have
    run first; preheader items are evaluated symbolically so expanded
    induction pointers disambiguate. *)
