(** Superblock formation for innermost loop bodies: trace selection
    (rarely-taken guarded updates are inverted off the trace) and tail
    duplication remove internal join points, leaving a straight-line main
    trace with side exits that the scheduler can reorder freely. *)

open Impact_ir

val max_growth : int
(** Tail-duplication size cap, as a multiple of the original body. *)

val invert_guards :
  Prog.ctx -> Block.item list -> Block.item list * Block.item list
(** Trace selection: returns the rewritten main items and the out-of-line
    update blocks. Exposed for tests. *)

val form_loop : Prog.ctx -> Block.loop -> Block.loop

val run : Prog.t -> Prog.t
(** Form every innermost loop body of the program. *)
