(* Superblock formation for innermost loop bodies (paper Section 1.1 /
   [14][18]): internal join points are removed by tail duplication, so
   the main trace becomes a superblock — a straight-line region with side
   exits only — which the scheduler can reorder freely under the
   speculation rules. Off-trace paths branch to duplicated tails placed
   after the main back-branch.

   Unreferenced labels are dropped first (the latch label usually becomes
   unreferenced once lowering-level CYCLE branches are simplified). A
   size cap bounds the duplication. *)

open Impact_ir

let max_growth = 8

(* Trace selection for guarded updates. A pattern

     br c SKIP ; <small straight-line update> ; SKIP:

   (the lowered form of [IF (...) V = ...]) is assumed rarely updated
   (running maxima, clamps), so the *taken* path is the frequent one.
   The guard is inverted and the update moved to an out-of-line block
   that jumps back to SKIP; the later join-removal pass then duplicates
   the tail for that block, leaving the common path fall-through — the
   trace a profile-driven superblock compiler would have picked. *)
let max_inverted_region = 6

let negate_cmp = function
  | Insn.Lt -> Insn.Ge
  | Insn.Le -> Insn.Gt
  | Insn.Gt -> Insn.Le
  | Insn.Ge -> Insn.Lt
  | Insn.Eq -> Insn.Ne
  | Insn.Ne -> Insn.Eq

let invert_guards ctx (items : Block.item list) :
    Block.item list * Block.item list =
  let side = ref [] in
  let rec go = function
    | [] -> []
    | (Block.Ins b as bitem) :: rest -> (
      match b.Insn.op, b.Insn.target with
      | Insn.Br (cls, c), Some skip_lbl -> (
        (* Collect a straight-line region up to [Lbl skip_lbl]. *)
        let rec region acc = function
          | Block.Lbl s :: rest' when s = skip_lbl -> Some (List.rev acc, rest')
          | Block.Ins i :: rest'
            when (not (Insn.is_branch i))
                 && (not (Insn.is_store i))
                 && List.length acc < max_inverted_region ->
            region (i :: acc) rest'
          | _ -> None
        in
        match region [] rest with
        | Some (upd, rest') when upd <> [] ->
          let upd_lbl = Prog.fresh_label ctx "INV" in
          let inv =
            Build.br ctx cls (negate_cmp c) b.Insn.srcs.(0) b.Insn.srcs.(1) upd_lbl
          in
          side :=
            !side
            @ (Block.Lbl upd_lbl
               :: List.map (fun i -> Block.Ins i) upd)
            @ [ Block.Ins (Build.jmp ctx skip_lbl) ];
          Block.Ins inv :: Block.Lbl skip_lbl :: go rest'
        | _ -> bitem :: go rest)
      | _ -> bitem :: go rest)
    | item :: rest -> item :: go rest
  in
  let main = go items in
  (main, !side)

let form_loop ctx (l : Block.loop) : Block.loop =
  (* References within the body. *)
  let referenced = Hashtbl.create 8 in
  List.iter
    (function
      | Block.Ins i -> (
        match i.Insn.target with Some t -> Hashtbl.replace referenced t () | None -> ())
      | Block.Lbl _ | Block.Loop _ -> ())
    l.Block.body;
  let items =
    List.filter
      (function Block.Lbl s -> Hashtbl.mem referenced s | _ -> true)
      l.Block.body
  in
  let items, inverted_side = invert_guards ctx items in
  let orig_size = List.length items in
  let main = ref (Array.of_list items) in
  let side = ref inverted_side in
  (* Inverted update blocks count against the growth budget too. *)
  let side_size =
    ref
      (List.length
         (List.filter (function Block.Ins _ -> true | _ -> false) inverted_side))
  in
  let renames : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let continue_forming = ref true in
  while !continue_forming do
    (* Last remaining label in the main trace. *)
    let last_label = ref None in
    Array.iteri
      (fun k item ->
        match item with Block.Lbl s -> last_label := Some (k, s) | _ -> ())
      !main;
    match !last_label with
    | None -> continue_forming := false
    | Some (pos, lbl) ->
      let tail = Array.sub !main (pos + 1) (Array.length !main - pos - 1) in
      let tail_insns =
        Array.to_list tail
        |> List.filter_map (function Block.Ins i -> Some i | _ -> None)
      in
      if tail_insns = [] || !side_size + List.length tail_insns > max_growth * orig_size
      then continue_forming := false
      else begin
        let lbl' = Prog.fresh_label ctx "SBL" in
        Hashtbl.replace renames lbl lbl';
        let clone = List.map (fun i -> Block.Ins (Build.clone ctx i)) tail_insns in
        side := !side @ (Block.Lbl lbl' :: clone);
        side_size := !side_size + List.length tail_insns;
        (* Remove the label from the main trace (tail stays in place). *)
        main :=
          Array.of_list
            (Array.to_list !main
            |> List.filteri (fun k _ -> k <> pos))
      end
  done;
  (* Truncate the main trace after its first unconditional transfer (the
     code beyond it is unreachable once joins are gone). *)
  let main_items =
    let rec go = function
      | [] -> []
      | (Block.Ins i as item) :: _ when i.Insn.op = Insn.Jmp -> [ item ]
      | (Block.Ins i as item) :: rest ->
        if Insn.is_cond_branch i && i.Insn.target = Some l.Block.head then
          (* The back-branch: keep it and stop (fall-through exits). *)
          [ item ]
        else item :: go rest
      | item :: rest -> item :: go rest
    in
    go (Array.to_list !main)
  in
  (* Apply label renames everywhere. *)
  let retarget item =
    match item with
    | Block.Ins i -> (
      match i.Insn.target with
      | Some t when Hashtbl.mem renames t ->
        Block.Ins { i with Insn.target = Some (Hashtbl.find renames t) }
      | _ -> item)
    | _ -> item
  in
  let main_items = List.map retarget main_items in
  let side_items = List.map retarget !side in
  (* If the main trace ends with a jump to a side block that nothing else
     references (the fall-through continuation created by if/else join
     removal), splice that block back inline. *)
  let ref_count items lbl =
    List.fold_left
      (fun acc item ->
        match item with
        | Block.Ins i when i.Insn.target = Some lbl -> acc + 1
        | _ -> acc)
      0 items
  in
  let split_side_block lbl items =
    let rec before acc = function
      | Block.Lbl s :: rest when s = lbl ->
        let rec blk acc2 = function
          | (Block.Lbl _ :: _) as rest2 -> (List.rev acc2, rest2)
          | x :: rest2 -> blk (x :: acc2) rest2
          | [] -> (List.rev acc2, [])
        in
        let content, after = blk [] rest in
        Some (List.rev acc, content, after)
      | x :: rest -> before (x :: acc) rest
      | [] -> None
    in
    before [] items
  in
  let rec splice main side =
    match List.rev main with
    | Block.Ins i :: rev_prefix when i.Insn.op = Insn.Jmp -> (
      match i.Insn.target with
      | Some lbl when ref_count main lbl + ref_count side lbl = 1 -> (
        match split_side_block lbl side with
        | Some (before, content, after) ->
          splice (List.rev rev_prefix @ content) (before @ after)
        | None -> (main, side))
      | _ -> (main, side))
    | _ -> (main, side)
  in
  let main_items, side_items = splice main_items side_items in
  (* After a conditional back-branch, fall-through must exit the loop;
     insert explicit exits between regions. *)
  let needs_exit_jump (items : Block.item list) =
    match List.rev items with
    | Block.Ins i :: _ -> i.Insn.op <> Insn.Jmp
    | _ -> true
  in
  let body =
    if side_items = [] then main_items
    else begin
      let rec add_separators = function
        | [] -> []
        | (Block.Lbl _ as lab) :: rest -> (
          (* Segment starts; collect until next label. *)
          let seg, rest' =
            let rec take acc = function
              | (Block.Lbl _ :: _) as r -> (List.rev acc, r)
              | x :: r -> take (x :: acc) r
              | [] -> (List.rev acc, [])
            in
            take [] rest
          in
          let seg =
            if needs_exit_jump seg then seg @ [ Block.Ins (Build.jmp ctx l.Block.exit_lbl) ]
            else seg
          in
          (lab :: seg) @ add_separators rest')
        | x :: rest -> x :: add_separators rest
      in
      let main' =
        if needs_exit_jump main_items then
          main_items @ [ Block.Ins (Build.jmp ctx l.Block.exit_lbl) ]
        else main_items
      in
      main' @ add_separators side_items
    end
  in
  { l with Block.body }

let run (p : Prog.t) : Prog.t =
  Prog.with_entry p (Block.map_innermost (form_loop p.Prog.ctx) p.Prog.entry)
