lib/sched/superblock.ml: Array Block Build Hashtbl Impact_ir Insn List Prog
