lib/sched/list_sched.mli: Block Impact_analysis Impact_ir Insn Linval Machine Prog Reg
