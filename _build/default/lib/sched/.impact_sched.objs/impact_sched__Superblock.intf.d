lib/sched/superblock.mli: Block Impact_ir Prog
