lib/sched/list_sched.ml: Array Block Ddg Impact_analysis Impact_ir Insn Linval List Liveness Machine Prog Reg Sb
