(* Superblock list scheduling: dependence-height priority, issue-width
   and branch-slot resource constraints, speculative upward motion of
   non-excepting instructions past side exits (subject to the
   destination-dead-at-target rule encoded in the dependence graph). *)

open Impact_ir
open Impact_analysis

type result = {
  items : Block.item list;  (* reordered segment *)
  makespan : int;  (* schedule length in cycles *)
  issue_time : (int * int) list;  (* (insn id, cycle), in emission order *)
}

(* Schedule a label-free instruction segment. *)
let schedule_segment (machine : Machine.t) ~live_at_target
    ?(pre_env = Reg.Map.empty) (insns : Insn.t array) : result =
  let items = Array.map (fun i -> Block.Ins i) insns in
  let sb = Sb.make ~head:"\000head" ~exit_lbl:"\000exit" items in
  let ddg = Ddg.build ~live_at_target ~pre_env sb in
  let heights = Ddg.heights ddg in
  let n = Array.length insns in
  let scheduled = Array.make n (-1) in
  let npreds = Array.make n 0 in
  Array.iteri (fun _ l -> List.iter (fun (d, _) -> npreds.(d) <- npreds.(d) + 1) l) ddg.Ddg.succs;
  (* earliest data-ready cycle, updated as preds schedule *)
  let ready_at = Array.make n 0 in
  let remaining = ref n in
  let unscheduled_preds = Array.copy npreds in
  let cycle = ref 0 in
  let order = ref [] in
  while !remaining > 0 do
    let issued = ref 0 in
    let branches = ref 0 in
    let progress = ref true in
    (* Re-collect candidates within the cycle so zero-latency chains
       (order-only edges) can share a cycle. *)
    while !progress && !issued < machine.Machine.issue do
      progress := false;
      let candidates = ref [] in
      for k = 0 to n - 1 do
        if scheduled.(k) < 0 && unscheduled_preds.(k) = 0 && ready_at.(k) <= !cycle then
          candidates := k :: !candidates
      done;
      let candidates =
        List.sort
          (fun a b ->
            match compare heights.(b) heights.(a) with 0 -> compare a b | c -> c)
          !candidates
      in
      List.iter
        (fun k ->
          if !issued < machine.Machine.issue && scheduled.(k) < 0 then begin
            let is_br = Insn.is_branch insns.(k) in
            if (not is_br) || !branches < machine.Machine.branch_slots then begin
              scheduled.(k) <- !cycle;
              order := (k, !cycle) :: !order;
              incr issued;
              if is_br then incr branches;
              decr remaining;
              progress := true;
              List.iter
                (fun (d, lat) ->
                  unscheduled_preds.(d) <- unscheduled_preds.(d) - 1;
                  ready_at.(d) <- max ready_at.(d) (!cycle + lat))
                ddg.Ddg.succs.(k)
            end
          end)
        candidates
    done;
    incr cycle
  done;
  let order = List.rev !order in
  let emission =
    List.sort
      (fun (a, ca) (b, cb) -> match compare ca cb with 0 -> compare a b | c -> c)
      order
  in
  let makespan =
    List.fold_left
      (fun acc (k, c) -> max acc (c + Machine.latency insns.(k).Insn.op))
      0 order
  in
  {
    items = List.map (fun (k, _) -> Block.Ins insns.(k)) emission;
    makespan;
    issue_time = List.map (fun (k, c) -> (insns.(k).Insn.id, c)) emission;
  }

(* Split a body into segments at labels and schedule each. Segments that
   still contain labels are impossible here by construction (splitting is
   at labels). *)
let schedule_body (machine : Machine.t) ~live_at_target
    ?(pre_env = Reg.Map.empty) (body : Block.t) : Block.t =
  let rec split acc cur = function
    | [] -> List.rev (if cur = [] then acc else `Run (List.rev cur) :: acc)
    | Block.Ins i :: rest -> split acc (i :: cur) rest
    | (Block.Lbl _ as it) :: rest ->
      let acc = if cur = [] then `Item it :: acc else `Item it :: `Run (List.rev cur) :: acc in
      split acc [] rest
    | (Block.Loop _ as it) :: rest ->
      let acc = if cur = [] then `Item it :: acc else `Item it :: `Run (List.rev cur) :: acc in
      split acc [] rest
  in
  List.concat_map
    (function
      | `Item it -> [ it ]
      | `Run insns ->
        (schedule_segment machine ~live_at_target ~pre_env (Array.of_list insns)).items)
    (split [] [] body)

(* Schedule every innermost loop body of the program. Superblock
   formation should have run first. The preheader items feeding each loop
   are evaluated symbolically so the scheduler can disambiguate addresses
   built from expanded induction registers. *)
let run (machine : Machine.t) (p : Prog.t) : Prog.t =
  let live = Liveness.of_prog p in
  let live_at_target i = Some (Liveness.live_at_target live i) in
  let rec go_block (b : Block.t) : Block.t =
    let rec go acc = function
      | [] -> List.rev acc
      | Block.Loop l :: rest when Block.is_innermost l ->
        let pre_env = Linval.env_of_items (List.rev acc) in
        let l =
          { l with Block.body = schedule_body machine ~live_at_target ~pre_env l.Block.body }
        in
        go (Block.Loop l :: acc) rest
      | Block.Loop l :: rest ->
        go (Block.Loop { l with Block.body = go_block l.Block.body } :: acc) rest
      | ((Block.Ins _ | Block.Lbl _) as item) :: rest -> go (item :: acc) rest
    in
    go [] b
  in
  Prog.with_entry p (go_block p.Prog.entry)
