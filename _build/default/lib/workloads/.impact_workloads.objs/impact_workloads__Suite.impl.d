lib/workloads/suite.ml: Array Impact_fir Kernels List
