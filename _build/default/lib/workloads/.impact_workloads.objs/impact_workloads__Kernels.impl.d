lib/workloads/kernels.ml: Array Impact_fir List
