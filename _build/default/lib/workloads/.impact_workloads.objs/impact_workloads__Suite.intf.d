lib/workloads/suite.mli: Impact_fir
