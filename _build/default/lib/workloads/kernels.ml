(* Building blocks for the 40 synthetic loop nests standing in for the
   paper's Table 2 (the PERFECT club and SPEC sources are not
   redistributable; these kernels match the published per-loop
   characteristics: innermost source-line count, iteration count,
   nesting depth, DOALL/DOACROSS/serial classification and presence of
   conditionals). *)

open Impact_fir.Ast

(* Deterministic array initializers, distinct per seed. *)
let init seed k =
  let x = (k + (seed * 37)) * 2654435761 land 0xFFFFF in
  (float_of_int (x mod 2000) /. 500.0) +. 0.25

let init_pos seed k = abs_float (init seed k) +. 0.5

(* Integer selector mask, mostly positive (the biased branch profile a
   trace-selecting compiler assumes). *)
let init_mask seed k = float_of_int ((((k + seed) * 7919) land 0xFFFF) mod 8 - 1)

(* A fixed list of constants used when generating many-line bodies. *)
let consts = [| 0.5; 1.25; 0.75; 2.0; 1.5; 0.25; 3.0; 0.125; 1.75; 0.625 |]

let const k = consts.(k mod Array.length consts)

(* k independent elementwise statements over distinct arrays:
   Dst_m(j) = Src_m(j) op c_m (dual-operand variants cycle through the
   shapes). Arrays must be declared by the caller: names are
   [dsts.(m)] and [srcs.(m)]. *)
let elementwise_lines ~(dsts : string array) ~(srcs : string array) ~j k =
  List.init k (fun m ->
    let d = dsts.(m mod Array.length dsts) in
    let s = srcs.(m mod Array.length srcs) in
    let s2 = srcs.((m + 1) mod Array.length srcs) in
    let c = const m in
    match m mod 4 with
    | 0 -> astore d [ j ] ((idx s [ j ] *: r c) +: idx s2 [ j ])
    | 1 -> astore d [ j ] (idx s [ j ] -: (idx s2 [ j ] *: r c))
    | 2 -> astore d [ j ] ((idx s [ j ] +: idx s2 [ j ]) *: r c)
    | _ -> astore d [ j ] ((idx s [ j ] /: r (c +. 1.0)) +: r c))

(* Same over 2-d arrays indexed (j, t). *)
let elementwise_lines2 ~(dsts : string array) ~(srcs : string array) ~j ~t k =
  List.init k (fun m ->
    let d = dsts.(m mod Array.length dsts) in
    let s = srcs.(m mod Array.length srcs) in
    let s2 = srcs.((m + 1) mod Array.length srcs) in
    let c = const m in
    match m mod 3 with
    | 0 -> astore d [ j; t ] ((idx s [ j; t ] *: r c) +: idx s2 [ j; t ])
    | 1 -> astore d [ j; t ] (idx s [ j; t ] -: (idx s2 [ j; t ] *: r c))
    | _ -> astore d [ j; t ] ((idx s [ j; t ] +: idx s2 [ j; t ]) *: r c))

(* Declarations for a family of n-element 1-d real arrays. *)
let decls1 names n =
  List.mapi (fun k name -> array1 name TReal n (init (k + 1))) names

let decls2 names n m =
  List.mapi (fun k name -> array2 name TReal n m (init (k + 11))) names
