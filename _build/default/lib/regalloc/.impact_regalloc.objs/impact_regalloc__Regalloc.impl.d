lib/regalloc/regalloc.ml: Array Flatten Hashtbl Impact_analysis Impact_ir Insn List Liveness Operand Prog Reg
