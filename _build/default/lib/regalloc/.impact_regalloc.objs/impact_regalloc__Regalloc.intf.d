lib/regalloc/regalloc.mli: Hashtbl Impact_ir Prog Reg
