(* Graph-coloring register allocation over the scheduled code, used as a
   measurement: the simulated processor has an unbounded register file
   (paper Section 3.1), and "the register allocator attempts to utilize
   the least number of registers required for a given loop, so registers
   are reused as soon as they become available". We build the
   interference graph from liveness over the final schedule and color it
   with a Chaitin-style simplify/select pass (smallest-degree-last
   ordering); the color counts per class are the reported register
   usage. *)

open Impact_ir
open Impact_analysis

type usage = { int_used : int; float_used : int }

let total u = u.int_used + u.float_used

(* Interference graph per register class. *)
let interference (p : Prog.t) : (Reg.t, Reg.Set.t) Hashtbl.t =
  let live = Liveness.of_prog p in
  let flat = live.Liveness.flat in
  let graph : (Reg.t, Reg.Set.t) Hashtbl.t = Hashtbl.create 64 in
  let node r = if not (Hashtbl.mem graph r) then Hashtbl.replace graph r Reg.Set.empty in
  let add_edge a b =
    if not (Reg.equal a b) && a.Reg.cls = b.Reg.cls then begin
      node a;
      node b;
      Hashtbl.replace graph a (Reg.Set.add b (Hashtbl.find graph a));
      Hashtbl.replace graph b (Reg.Set.add a (Hashtbl.find graph b))
    end
  in
  Array.iteri
    (fun k (i : Insn.t) ->
      List.iter
        (fun (d : Reg.t) ->
          node d;
          (* A definition interferes with everything live across it. For
             a move, the source is exempt (coalescable). *)
          let exempt =
            match i.Insn.op, i.Insn.srcs with
            | (Insn.IMov | Insn.FMov), [| Operand.Reg s |] -> Some s
            | _ -> None
          in
          Reg.Set.iter
            (fun r ->
              match exempt with
              | Some s when Reg.equal s r -> ()
              | _ -> add_edge d r)
            live.Liveness.live_out.(k))
        (Insn.defs i);
      List.iter (fun r -> node r) (Insn.uses i))
    flat.Flatten.code;
  graph

(* Greedy coloring in smallest-degree-last order; returns the assignment
   for the given class. *)
let class_coloring (graph : (Reg.t, Reg.Set.t) Hashtbl.t) (cls : Reg.cls) :
    (Reg.t * int) list =
  let nodes =
    Hashtbl.fold (fun r _ acc -> if r.Reg.cls = cls then r :: acc else acc) graph []
  in
  if nodes = [] then []
  else begin
    let degree = Hashtbl.create 64 in
    List.iter
      (fun r ->
        let nbrs = Reg.Set.filter (fun x -> x.Reg.cls = cls) (Hashtbl.find graph r) in
        Hashtbl.replace degree r (Reg.Set.cardinal nbrs))
      nodes;
    let removed = Hashtbl.create 64 in
    let stack = ref [] in
    let remaining = ref (List.length nodes) in
    while !remaining > 0 do
      (* Smallest remaining degree. *)
      let best = ref None in
      List.iter
        (fun r ->
          if not (Hashtbl.mem removed r) then
            match !best with
            | None -> best := Some r
            | Some b ->
              if Hashtbl.find degree r < Hashtbl.find degree b then best := Some r)
        nodes;
      match !best with
      | None -> remaining := 0
      | Some r ->
        Hashtbl.replace removed r ();
        stack := r :: !stack;
        decr remaining;
        Reg.Set.iter
          (fun x ->
            if x.Reg.cls = cls && not (Hashtbl.mem removed x) then
              Hashtbl.replace degree x (Hashtbl.find degree x - 1))
          (Hashtbl.find graph r)
    done;
    (* Select: color in reverse removal order with the lowest free color. *)
    let color = Hashtbl.create 64 in
    List.iter
      (fun r ->
        let used =
          Reg.Set.fold
            (fun x acc ->
              match Hashtbl.find_opt color x with Some c -> c :: acc | None -> acc)
            (Hashtbl.find graph r)
            []
        in
        let rec first c = if List.mem c used then first (c + 1) else c in
        Hashtbl.replace color r (first 0))
      !stack;
    Hashtbl.fold (fun r c acc -> (r, c) :: acc) color []
  end

let color_class graph cls =
  List.fold_left (fun acc (_, c) -> max acc (c + 1)) 0 (class_coloring graph cls)

let measure (p : Prog.t) : usage =
  let graph = interference p in
  {
    int_used = color_class graph Reg.Int;
    float_used = color_class graph Reg.Float;
  }

(* Full coloring of a program, for validation: interfering registers of
   the same class never share a color. *)
let coloring (p : Prog.t) : (Reg.t * int) list * (Reg.t, Reg.Set.t) Hashtbl.t =
  let graph = interference p in
  (class_coloring graph Reg.Int @ class_coloring graph Reg.Float, graph)

(* Register usage of a single loop nest region: measured over the whole
   program (the paper reports "total integer and floating point registers
   utilized in the loop nest", and our programs are single loop nests
   plus setup code). *)
let measure_loop = measure
