(* A text front-end for the mini-Fortran language, so kernels can be
   written as source files rather than OCaml AST builders.

   Syntax (case-insensitive keywords; one statement per line; '!' or 'c '
   starts a comment):

     integer j
     real s = 0.0
     real A(100) seed 3        ! deterministic pseudo-random contents
     real C(100) zero
     real D(100) linear 1.0 0.5  ! D(k) = 1.0 + 0.5*k (0-based linear index)

     do j = 1, 100
       C(j) = A(j) * 2.0 + D(j)
       s = s + A(j)
       if (A(j) .lt. 0.5) cycle
       if (A(j) .gt. 2.0) then
         C(j) = 2.0
       else
         C(j) = C(j) / 2.0
       end
     end

     output s

   Relational operators: .lt. .le. .gt. .ge. .eq. .ne. or < <= > >= == /=.
   DO steps: do j = lo, hi, step. *)

exception Parse_error of string

let err line fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s))) fmt

(* ---- lexer ---- *)

type token =
  | TIdent of string
  | TInt of int
  | TFloat of float
  | TLparen
  | TRparen
  | TComma
  | TAssign
  | TPlus
  | TMinus
  | TStar
  | TSlash
  | TRel of Ast.cmp

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_digit c = c >= '0' && c <= '9'

(* Tokenize one logical line. *)
let tokenize lineno (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '!' then i := n (* comment *)
    else if c = '(' then (emit TLparen; incr i)
    else if c = ')' then (emit TRparen; incr i)
    else if c = ',' then (emit TComma; incr i)
    else if c = '+' then (emit TPlus; incr i)
    else if c = '-' then (emit TMinus; incr i)
    else if c = '*' then (emit TStar; incr i)
    else if c = '=' && !i + 1 < n && s.[!i + 1] = '=' then (emit (TRel Ast.CEq); i := !i + 2)
    else if c = '=' then (emit TAssign; incr i)
    else if c = '<' && !i + 1 < n && s.[!i + 1] = '=' then (emit (TRel Ast.CLe); i := !i + 2)
    else if c = '<' then (emit (TRel Ast.CLt); incr i)
    else if c = '>' && !i + 1 < n && s.[!i + 1] = '=' then (emit (TRel Ast.CGe); i := !i + 2)
    else if c = '>' then (emit (TRel Ast.CGt); incr i)
    else if c = '/' && !i + 1 < n && s.[!i + 1] = '=' then (emit (TRel Ast.CNe); i := !i + 2)
    else if c = '/' then (emit TSlash; incr i)
    else if c = '.' && !i + 3 < n && not (is_digit s.[!i + 1]) then begin
      (* .lt. style operator *)
      let rec close k = if k < n && s.[k] <> '.' then close (k + 1) else k in
      let stop = close (!i + 1) in
      if stop >= n then err lineno "unterminated .op."
      else begin
        let op = String.lowercase_ascii (String.sub s (!i + 1) (stop - !i - 1)) in
        let rel =
          match op with
          | "lt" -> Ast.CLt
          | "le" -> Ast.CLe
          | "gt" -> Ast.CGt
          | "ge" -> Ast.CGe
          | "eq" -> Ast.CEq
          | "ne" -> Ast.CNe
          | _ -> err lineno "unknown operator .%s." op
        in
        emit (TRel rel);
        i := stop + 1
      end
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do incr i done;
      let is_float = ref false in
      (* A '.' continues the number only when followed by a digit, so
         "2.gt.3" lexes as [2; .gt.; 3] but "2.5" is one literal. *)
      if !i + 1 < n && s.[!i] = '.' && is_digit s.[!i + 1] then begin
        is_float := true;
        incr i;
        while !i < n && is_digit s.[!i] do incr i done
      end
      else if !i < n && s.[!i] = '.' && (!i + 1 >= n || not (is_ident_char s.[!i + 1]))
      then begin
        (* trailing "2." literal *)
        is_float := true;
        incr i
      end;
      if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
        let j = ref (!i + 1) in
        if !j < n && (s.[!j] = '+' || s.[!j] = '-') then incr j;
        if !j < n && is_digit s.[!j] then begin
          is_float := true;
          i := !j;
          while !i < n && is_digit s.[!i] do incr i done
        end
      end;
      let text = String.sub s start (!i - start) in
      if !is_float then emit (TFloat (float_of_string text))
      else emit (TInt (int_of_string text))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      emit (TIdent (String.lowercase_ascii (String.sub s start (!i - start))))
    end
    else err lineno "unexpected character %c" c
  done;
  List.rev !toks

(* ---- parser ---- *)

type line = { no : int; toks : token list }

type pstate = { mutable lines : line list }

let peek_line st = match st.lines with [] -> None | l :: _ -> Some l

let next_line st =
  match st.lines with
  | [] -> raise (Parse_error "unexpected end of file")
  | l :: rest ->
    st.lines <- rest;
    l

(* Expression parsing over one line's token list. *)
let rec parse_expr line toks : Ast.expr * token list =
  let lhs, toks = parse_term line toks in
  let rec go acc toks =
    match toks with
    | TPlus :: rest ->
      let rhs, rest = parse_term line rest in
      go (Ast.EBin (Ast.BAdd, acc, rhs)) rest
    | TMinus :: rest ->
      let rhs, rest = parse_term line rest in
      go (Ast.EBin (Ast.BSub, acc, rhs)) rest
    | _ -> (acc, toks)
  in
  go lhs toks

and parse_term line toks =
  let lhs, toks = parse_factor line toks in
  let rec go acc toks =
    match toks with
    | TStar :: rest ->
      let rhs, rest = parse_factor line rest in
      go (Ast.EBin (Ast.BMul, acc, rhs)) rest
    | TSlash :: rest ->
      let rhs, rest = parse_factor line rest in
      go (Ast.EBin (Ast.BDiv, acc, rhs)) rest
    | _ -> (acc, toks)
  in
  go lhs toks

and parse_factor line toks =
  match toks with
  | TInt n :: rest -> (Ast.EInt n, rest)
  | TFloat x :: rest -> (Ast.EReal x, rest)
  | TMinus :: rest ->
    let e, rest = parse_factor line rest in
    (Ast.ENeg e, rest)
  | TLparen :: rest -> (
    let e, rest = parse_expr line rest in
    match rest with
    | TRparen :: rest -> (e, rest)
    | _ -> err line "expected )")
  | TIdent "mod" :: TLparen :: rest -> (
    let a, rest = parse_expr line rest in
    match rest with
    | TComma :: rest -> (
      let b, rest = parse_expr line rest in
      match rest with
      | TRparen :: rest -> (Ast.EBin (Ast.BRem, a, b), rest)
      | _ -> err line "expected ) after mod")
    | _ -> err line "expected , in mod")
  | TIdent "int" :: TLparen :: rest -> (
    let a, rest = parse_expr line rest in
    match rest with
    | TRparen :: rest -> (Ast.ECvt (Ast.TInt, a), rest)
    | _ -> err line "expected ) after int()")
  | TIdent "float" :: TLparen :: rest -> (
    let a, rest = parse_expr line rest in
    match rest with
    | TRparen :: rest -> (Ast.ECvt (Ast.TReal, a), rest)
    | _ -> err line "expected ) after float()")
  | TIdent name :: TLparen :: rest ->
    let idxs, rest = parse_exprlist line rest in
    (Ast.EIdx (name, idxs), rest)
  | TIdent name :: rest -> (Ast.EVar name, rest)
  | _ -> err line "expected expression"

and parse_exprlist line toks =
  let e, toks = parse_expr line toks in
  match toks with
  | TComma :: rest ->
    let es, rest = parse_exprlist line rest in
    (e :: es, rest)
  | TRparen :: rest -> ([ e ], rest)
  | _ -> err line "expected , or ) in subscript list"

let parse_cond line toks : Ast.cond * token list =
  let lhs, toks = parse_expr line toks in
  match toks with
  | TRel rel :: rest ->
    let rhs, rest = parse_expr line rest in
    ({ Ast.rel; lhs; rhs }, rest)
  | _ -> err line "expected relational operator"

let expect_empty line = function
  | [] -> ()
  | _ -> err line "trailing tokens"

(* Array initializers. *)
let pseudo_init seed k =
  let x = (k + (seed * 37)) * 2654435761 land 0xFFFFF in
  (float_of_int (x mod 2000) /. 500.0) +. 0.25

(* ---- statements ---- *)

let rec parse_stmts st ~stop : Ast.stmt list =
  match peek_line st with
  | None -> err 0 "missing '%s'" (String.concat "/" stop)
  | Some { no = _; toks = TIdent kw :: _ } when List.mem kw stop -> []
  | Some _ ->
    let s = parse_stmt st in
    s :: parse_stmts st ~stop

and parse_stmt st : Ast.stmt =
  let { no; toks } = next_line st in
  match toks with
  | TIdent "do" :: TIdent v :: TAssign :: rest -> (
    let lo, rest = parse_expr no rest in
    match rest with
    | TComma :: rest -> (
      let hi, rest = parse_expr no rest in
      let step, rest =
        match rest with
        | TComma :: rest -> parse_expr no rest
        | _ -> (Ast.EInt 1, rest)
      in
      expect_empty no rest;
      let body = parse_stmts st ~stop:[ "end"; "enddo" ] in
      let e = next_line st in
      (match e.toks with
      | [ TIdent ("end" | "enddo") ] -> ()
      | _ -> err e.no "expected end");
      Ast.SDo { Ast.v; lo; hi; step; body })
    | _ -> err no "expected , after DO lower bound")
  | TIdent "if" :: TLparen :: rest -> (
    let cond, rest = parse_cond no rest in
    match rest with
    | TRparen :: TIdent "cycle" :: rest ->
      expect_empty no rest;
      Ast.SIf (cond, [ Ast.SCycle ], [])
    | TRparen :: TIdent "then" :: rest -> (
      expect_empty no rest;
      let then_ = parse_stmts st ~stop:[ "else"; "end"; "endif" ] in
      let e = next_line st in
      match e.toks with
      | [ TIdent ("end" | "endif") ] -> Ast.SIf (cond, then_, [])
      | [ TIdent "else" ] ->
        let else_ = parse_stmts st ~stop:[ "end"; "endif" ] in
        let e2 = next_line st in
        (match e2.toks with
        | [ TIdent ("end" | "endif") ] -> ()
        | _ -> err e2.no "expected end after else");
        Ast.SIf (cond, then_, else_)
      | _ -> err e.no "expected else or end")
    | TRparen :: rest -> (
      (* one-line IF: if (c) stmt *)
      match parse_simple_stmt no rest with
      | Some s -> Ast.SIf (cond, [ s ], [])
      | None -> err no "expected statement after if (...)")
    | _ -> err no "expected ) after condition")
  | [ TIdent "cycle" ] -> Ast.SCycle
  | _ -> (
    match parse_simple_stmt no toks with
    | Some s -> s
    | None -> err no "expected statement")

and parse_simple_stmt no toks : Ast.stmt option =
  match toks with
  | TIdent name :: TLparen :: rest -> (
    let idxs, rest = parse_exprlist no rest in
    match rest with
    | TAssign :: rest ->
      let e, rest = parse_expr no rest in
      expect_empty no rest;
      Some (Ast.SAssign (Ast.LIdx (name, idxs), e))
    | _ -> None)
  | TIdent name :: TAssign :: rest ->
    let e, rest = parse_expr no rest in
    expect_empty no rest;
    Some (Ast.SAssign (Ast.LVar name, e))
  | _ -> None

(* ---- declarations and the whole program ---- *)

let parse_decl no (toks : token list) : Ast.decl option =
  let parse_dims toks =
    match toks with
    | TLparen :: rest ->
      let rec go acc = function
        | TInt d :: TComma :: rest -> go (d :: acc) rest
        | TInt d :: TRparen :: rest -> (List.rev (d :: acc), rest)
        | _ -> err no "expected integer dimensions"
      in
      let dims, rest = go [] rest in
      (Some dims, rest)
    | _ -> (None, toks)
  in
  match toks with
  | TIdent ("integer" | "int") :: TIdent name :: rest -> (
    match rest with
    | [] -> Some (Ast.DScalar (name, Ast.TInt, 0.0))
    | [ TAssign; TInt v ] -> Some (Ast.DScalar (name, Ast.TInt, float_of_int v))
    | [ TAssign; TMinus; TInt v ] -> Some (Ast.DScalar (name, Ast.TInt, float_of_int (-v)))
    | _ -> err no "bad integer declaration")
  | TIdent "real" :: TIdent name :: rest -> (
    let dims, rest = parse_dims rest in
    match dims with
    | None -> (
      match rest with
      | [] -> Some (Ast.DScalar (name, Ast.TReal, 0.0))
      | [ TAssign; TFloat v ] -> Some (Ast.DScalar (name, Ast.TReal, v))
      | [ TAssign; TInt v ] -> Some (Ast.DScalar (name, Ast.TReal, float_of_int v))
      | [ TAssign; TMinus; TFloat v ] -> Some (Ast.DScalar (name, Ast.TReal, -.v))
      | [ TAssign; TMinus; TInt v ] ->
        Some (Ast.DScalar (name, Ast.TReal, float_of_int (-v)))
      | _ -> err no "bad real declaration")
    | Some dims -> (
      let init =
        match rest with
        | [] | [ TIdent "zero" ] -> fun _ -> 0.0
        | [ TIdent "seed"; TInt s ] -> pseudo_init s
        | [ TIdent "linear"; TFloat a; TFloat b ] -> fun k -> a +. (b *. float_of_int k)
        | [ TIdent "linear"; TInt a; TInt b ] ->
          fun k -> float_of_int a +. (float_of_int b *. float_of_int k)
        | _ -> err no "bad array initializer (use zero | seed N | linear A B)"
      in
      Some (Ast.DArray (name, Ast.TReal, dims, init))))
  | _ -> None

let parse_program (source : string) : Ast.program =
  let raw_lines = String.split_on_char '\n' source in
  let lines =
    List.mapi (fun k s -> { no = k + 1; toks = tokenize (k + 1) s }) raw_lines
    |> List.filter (fun l -> l.toks <> [])
  in
  let decls = ref [] in
  let outs = ref [] in
  let st = { lines } in
  (* Leading declarations. *)
  let rec take_decls () =
    match peek_line st with
    | Some { no; toks } -> (
      match parse_decl no toks with
      | Some d ->
        ignore (next_line st);
        decls := d :: !decls;
        take_decls ()
      | None -> ())
    | None -> ()
  in
  take_decls ();
  (* Statements, with OUTPUT lines allowed anywhere at top level. *)
  let stmts = ref [] in
  let rec take_stmts () =
    match peek_line st with
    | None -> ()
    | Some { no; toks = TIdent "output" :: rest } ->
      ignore (next_line st);
      let rec names = function
        | [ TIdent n ] -> [ n ]
        | TIdent n :: TComma :: rest -> n :: names rest
        | _ -> err no "expected scalar names after output"
      in
      outs := !outs @ names rest;
      take_stmts ()
    | Some _ ->
      stmts := parse_stmt st :: !stmts;
      take_stmts ()
  in
  take_stmts ();
  { Ast.decls = List.rev !decls; stmts = List.rev !stmts; outs = !outs }

let parse_file (path : string) : Ast.program =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_program s
