(** Text front-end for the mini-Fortran language: one statement per
    line, case-insensitive keywords, '!' comments, .lt.-style or symbolic
    relational operators, DO/END loops, block and one-line IF, CYCLE,
    array declarations with [zero], [seed N] or [linear A B]
    initializers, and OUTPUT directives naming the observable scalars.
    See [examples/kernels/] for complete programs. *)

exception Parse_error of string

val parse_program : string -> Ast.program
(** Parse from a string; raises {!Parse_error} with a line number. *)

val parse_file : string -> Ast.program
