(** Lowering from mini-Fortran to the RISC IR. Generated code is naive
    (explicit subscript arithmetic per access); the classical optimizer
    produces baseline code of the quality shown in the paper's figures. *)

exception Lower_error of string

val lower : Ast.program -> Impact_ir.Prog.t
