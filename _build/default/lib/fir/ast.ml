(* Abstract syntax for the mini-Fortran source language in which the
   40 workload loop nests are written. Arrays are column-major and
   1-indexed, DO loops have entry-evaluated bounds, and IF/CYCLE give the
   conditional constructs that appear in the paper's loops. *)

type ty = TInt | TReal

type binop = BAdd | BSub | BMul | BDiv | BRem

type cmp = CLt | CLe | CGt | CGe | CEq | CNe

type expr =
  | EInt of int
  | EReal of float
  | EVar of string
  | EIdx of string * expr list
  | EBin of binop * expr * expr
  | ENeg of expr
  | ECvt of ty * expr

type cond = { rel : cmp; lhs : expr; rhs : expr }

type stmt =
  | SAssign of lval * expr
  | SIf of cond * stmt list * stmt list
  | SDo of doloop
  | SCycle  (** skip to the next iteration of the innermost enclosing loop *)

and lval = LVar of string | LIdx of string * expr list

and doloop = { v : string; lo : expr; hi : expr; step : expr; body : stmt list }

type decl =
  | DScalar of string * ty * float  (** name, type, initial value *)
  | DArray of string * ty * int list * (int -> float)
      (** name, element type, dimensions, initializer by linear index *)

type program = {
  decls : decl list;
  stmts : stmt list;
  outs : string list;  (** scalar variables observed after execution *)
}

(* Constructors used pervasively by the workload definitions. *)

let i n = EInt n

let r x = EReal x

let v name = EVar name

let idx name es = EIdx (name, es)

let ( +: ) a b = EBin (BAdd, a, b)

let ( -: ) a b = EBin (BSub, a, b)

let ( *: ) a b = EBin (BMul, a, b)

let ( /: ) a b = EBin (BDiv, a, b)

let rem a b = EBin (BRem, a, b)

let neg a = ENeg a

let assign name e = SAssign (LVar name, e)

let astore name es e = SAssign (LIdx (name, es), e)

let if_ rel lhs rhs then_ else_ = SIf ({ rel; lhs; rhs }, then_, else_)

let do_ voname lo hi body = SDo { v = voname; lo; hi; step = EInt 1; body }

let do_step voname lo hi step body = SDo { v = voname; lo; hi; step; body }

let scalar ?(init = 0.0) name ty = DScalar (name, ty, init)

let array1 name ty n f = DArray (name, ty, [ n ], f)

let array2 name ty n m f = DArray (name, ty, [ n; m ], f)

let array3 name ty n m k f = DArray (name, ty, [ n; m; k ], f)

let rec stmt_count stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | SAssign _ | SCycle -> 1
      | SIf (_, a, b) -> 1 + stmt_count a + stmt_count b
      | SDo d -> 1 + stmt_count d.body)
    0 stmts

(* Nesting depth of the deepest DO loop. *)
let rec loop_depth stmts =
  List.fold_left
    (fun acc s ->
      max acc
        (match s with
        | SAssign _ | SCycle -> 0
        | SIf (_, a, b) -> max (loop_depth a) (loop_depth b)
        | SDo d -> 1 + loop_depth d.body))
    0 stmts

(* Whether any innermost loop body contains a conditional. *)
let rec has_conditional stmts =
  List.exists
    (function
      | SAssign _ | SCycle -> false
      | SIf _ -> true
      | SDo d -> has_conditional d.body)
    stmts
