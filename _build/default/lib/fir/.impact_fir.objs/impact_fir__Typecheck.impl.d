lib/fir/typecheck.ml: Ast Hashtbl List Printf
