lib/fir/lower.ml: Array Ast Block Build Float Hashtbl Impact_ir Insn List Operand Printf Prog Reg Typecheck
