lib/fir/parse.mli: Ast
