lib/fir/parse.ml: Ast List Printf String
