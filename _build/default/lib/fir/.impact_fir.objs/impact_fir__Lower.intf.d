lib/fir/lower.mli: Ast Impact_ir
