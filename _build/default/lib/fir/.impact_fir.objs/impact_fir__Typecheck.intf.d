lib/fir/typecheck.mli: Ast Hashtbl
