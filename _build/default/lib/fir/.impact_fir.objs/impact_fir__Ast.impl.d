lib/fir/ast.ml: List
