(* Lowering from mini-Fortran to the RISC IR. Generated code is naive
   (explicit subscript arithmetic per access); the classical optimizer
   (constant/copy propagation, CSE, LICM, induction-variable strength
   reduction) is responsible for producing baseline code of the quality
   shown in the paper's figures. *)

open Impact_ir

exception Lower_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Lower_error s)) fmt

type lenv = {
  ctx : Prog.ctx;
  tenv : Typecheck.tenv;
  regs : (string, Reg.t) Hashtbl.t;
}

type buf = Block.item list ref

let emit_i (buf : buf) i = buf := Block.Ins i :: !buf

let emit_l (buf : buf) l = buf := Block.Lbl l :: !buf

let emit_loop (buf : buf) l = buf := Block.Loop l :: !buf

let items_of (buf : buf) = List.rev !buf

let cls_of_ty = function Ast.TInt -> Reg.Int | Ast.TReal -> Reg.Float

let home env name =
  match Hashtbl.find_opt env.regs name with
  | Some r -> r
  | None -> err "no home register for %s" name

let ty_of env e = Typecheck.expr_type env.tenv e

(* Convert an integer-typed operand to floating point, folding constants. *)
let to_float env buf (o : Operand.t) : Operand.t =
  match o with
  | Operand.Int n -> Operand.Flt (float_of_int n)
  | Operand.Flt _ -> o
  | Operand.Reg r when r.Reg.cls = Reg.Float -> o
  | Operand.Reg _ | Operand.Lab _ ->
    let d = Reg.fresh env.ctx.Prog.rgen Reg.Float in
    emit_i buf (Build.itof env.ctx d o);
    Operand.reg d

let fold_ibin op a b =
  match op with
  | Insn.Add -> Some (a + b)
  | Insn.Sub -> Some (a - b)
  | Insn.Mul -> Some (a * b)
  | Insn.Div -> if b = 0 then None else Some (a / b)
  | Insn.Rem -> if b = 0 then None else Some (a mod b)
  | Insn.Shl -> Some (a lsl b)
  | Insn.Shr -> Some (a asr b)
  | Insn.And -> Some (a land b)
  | Insn.Or -> Some (a lor b)
  | Insn.Xor -> Some (a lxor b)

let fold_fbin op a b =
  match op with
  | Insn.Fadd -> a +. b
  | Insn.Fsub -> a -. b
  | Insn.Fmul -> a *. b
  | Insn.Fdiv -> a /. b

let ibin_of = function
  | Ast.BAdd -> Insn.Add
  | Ast.BSub -> Insn.Sub
  | Ast.BMul -> Insn.Mul
  | Ast.BDiv -> Insn.Div
  | Ast.BRem -> Insn.Rem

let fbin_of = function
  | Ast.BAdd -> Insn.Fadd
  | Ast.BSub -> Insn.Fsub
  | Ast.BMul -> Insn.Fmul
  | Ast.BDiv -> Insn.Fdiv
  | Ast.BRem -> assert false

let cmp_of = function
  | Ast.CLt -> Insn.Lt
  | Ast.CLe -> Insn.Le
  | Ast.CGt -> Insn.Gt
  | Ast.CGe -> Insn.Ge
  | Ast.CEq -> Insn.Eq
  | Ast.CNe -> Insn.Ne

let negate_cmp = function
  | Insn.Lt -> Insn.Ge
  | Insn.Le -> Insn.Gt
  | Insn.Gt -> Insn.Le
  | Insn.Ge -> Insn.Lt
  | Insn.Eq -> Insn.Ne
  | Insn.Ne -> Insn.Eq

(* Element strides (in elements) for a column-major array. *)
let strides dims =
  let rec go acc = function
    | [] -> []
    | d :: rest -> acc :: go (acc * d) rest
  in
  go 1 dims

let rec lower_expr env buf (e : Ast.expr) : Operand.t =
  match e with
  | Ast.EInt n -> Operand.Int n
  | Ast.EReal x -> Operand.Flt x
  | Ast.EVar n -> Operand.reg (home env n)
  | Ast.EIdx (name, idxs) ->
    let base, off = lower_address env buf name idxs in
    let ty, _ = Hashtbl.find env.tenv.Typecheck.arrays name in
    let cls = cls_of_ty ty in
    let d = Reg.fresh env.ctx.Prog.rgen cls in
    emit_i buf (Build.load env.ctx cls d base off);
    Operand.reg d
  | Ast.ENeg a -> (
    match ty_of env a with
    | Ast.TInt -> lower_ibin env buf Insn.Sub (Ast.EInt 0) a
    | Ast.TReal -> lower_fbin env buf Insn.Fsub (Ast.EReal 0.0) a)
  | Ast.ECvt (Ast.TReal, a) -> (
    match ty_of env a with
    | Ast.TReal -> lower_expr env buf a
    | Ast.TInt -> to_float env buf (lower_expr env buf a))
  | Ast.ECvt (Ast.TInt, a) -> (
    match ty_of env a with
    | Ast.TInt -> lower_expr env buf a
    | Ast.TReal -> (
      let o = lower_expr env buf a in
      match o with
      | Operand.Flt x -> Operand.Int (int_of_float (Float.trunc x))
      | Operand.Reg _ | Operand.Int _ | Operand.Lab _ ->
        let d = Reg.fresh env.ctx.Prog.rgen Reg.Int in
        emit_i buf (Build.ftoi env.ctx d o);
        Operand.reg d))
  | Ast.EBin (op, a, b) -> (
    let ta = ty_of env a and tb = ty_of env b in
    match ta, tb with
    | Ast.TInt, Ast.TInt -> lower_ibin env buf (ibin_of op) a b
    | _, _ ->
      if op = Ast.BRem then err "MOD on reals";
      lower_fbin env buf (fbin_of op) a b)

and lower_ibin env buf iop a b : Operand.t =
  let oa = lower_expr env buf a in
  let ob = lower_expr env buf b in
  let fold =
    match oa, ob with
    | Operand.Int x, Operand.Int y -> fold_ibin iop x y
    | _ -> None
  in
  match fold with
  | Some z -> Operand.Int z
  | None ->
    let d = Reg.fresh env.ctx.Prog.rgen Reg.Int in
    emit_i buf (Build.ib env.ctx iop d oa ob);
    Operand.reg d

and lower_fbin env buf fop a b : Operand.t =
  let oa = to_float env buf (lower_expr env buf a) in
  let ob = to_float env buf (lower_expr env buf b) in
  match oa, ob with
  | Operand.Flt x, Operand.Flt y -> Operand.Flt (fold_fbin fop x y)
  | _ ->
    let d = Reg.fresh env.ctx.Prog.rgen Reg.Float in
    emit_i buf (Build.fb env.ctx fop d oa ob);
    Operand.reg d

(* Byte-offset address of an array element: base label plus
   4 * sum_k (idx_k - 1) * stride_k. *)
and lower_address env buf name idxs : Operand.t * Operand.t =
  let _, dims = Hashtbl.find env.tenv.Typecheck.arrays name in
  let sts = strides dims in
  let terms =
    List.map2
      (fun ix st -> Ast.EBin (Ast.BMul, Ast.EBin (Ast.BSub, ix, Ast.EInt 1), Ast.EInt st))
      idxs sts
  in
  let lin =
    match terms with
    | [] -> assert false
    | t0 :: rest -> List.fold_left (fun acc t -> Ast.EBin (Ast.BAdd, acc, t)) t0 rest
  in
  let byte_off = Ast.EBin (Ast.BMul, lin, Ast.EInt 4) in
  let off = lower_expr env buf byte_off in
  (Operand.lab name, off)

(* Lower an expression directly into a destination register when the shape
   allows (giving canonical accumulator forms like [s = s + t]); otherwise
   lower and move. *)
let lower_expr_into env buf (dst : Reg.t) (e : Ast.expr) =
  let dty = match dst.Reg.cls with Reg.Int -> Ast.TInt | Reg.Float -> Ast.TReal in
  match e, dty with
  | Ast.EBin (op, a, b), Ast.TInt
    when ty_of env a = Ast.TInt && ty_of env b = Ast.TInt ->
    let oa = lower_expr env buf a in
    let ob = lower_expr env buf b in
    emit_i buf (Build.ib env.ctx (ibin_of op) dst oa ob)
  | Ast.EBin (op, a, b), Ast.TReal when op <> Ast.BRem ->
    let oa = to_float env buf (lower_expr env buf a) in
    let ob = to_float env buf (lower_expr env buf b) in
    emit_i buf (Build.fb env.ctx (fbin_of op) dst oa ob)
  | _, _ -> (
    let o = lower_expr env buf e in
    let o = if dty = Ast.TReal then to_float env buf o else o in
    match dst.Reg.cls with
    | Reg.Int -> emit_i buf (Build.imov env.ctx dst o)
    | Reg.Float -> emit_i buf (Build.fmov env.ctx dst o))

let lower_cond env buf (c : Ast.cond) ~negate ~target =
  let ta = ty_of env c.Ast.lhs and tb = ty_of env c.Ast.rhs in
  let cmp = cmp_of c.Ast.rel in
  let cmp = if negate then negate_cmp cmp else cmp in
  if ta = Ast.TInt && tb = Ast.TInt then begin
    let oa = lower_expr env buf c.Ast.lhs in
    let ob = lower_expr env buf c.Ast.rhs in
    emit_i buf (Build.br env.ctx Reg.Int cmp oa ob target)
  end
  else begin
    let oa = to_float env buf (lower_expr env buf c.Ast.lhs) in
    let ob = to_float env buf (lower_expr env buf c.Ast.rhs) in
    emit_i buf (Build.br env.ctx Reg.Float cmp oa ob target)
  end

let const_int_of_expr = function
  | Ast.EInt n -> Some n
  | Ast.ENeg (Ast.EInt n) -> Some (-n)
  | _ -> None

let rec lower_stmt env buf ~latch (s : Ast.stmt) =
  match s with
  | Ast.SAssign (Ast.LVar n, e) -> lower_expr_into env buf (home env n) e
  | Ast.SAssign (Ast.LIdx (name, idxs), e) ->
    let ty, _ = Hashtbl.find env.tenv.Typecheck.arrays name in
    let cls = cls_of_ty ty in
    let v = lower_expr env buf e in
    let v = if ty = Ast.TReal then to_float env buf v else v in
    let base, off = lower_address env buf name idxs in
    emit_i buf (Build.store env.ctx cls base off v)
  | Ast.SIf (c, then_, []) ->
    let lend = Prog.fresh_label env.ctx "F" in
    lower_cond env buf c ~negate:true ~target:lend;
    List.iter (lower_stmt env buf ~latch) then_;
    emit_l buf lend
  | Ast.SIf (c, then_, else_) ->
    let lelse = Prog.fresh_label env.ctx "F" in
    let lend = Prog.fresh_label env.ctx "F" in
    lower_cond env buf c ~negate:true ~target:lelse;
    List.iter (lower_stmt env buf ~latch) then_;
    emit_i buf (Build.jmp env.ctx lend);
    emit_l buf lelse;
    List.iter (lower_stmt env buf ~latch) else_;
    emit_l buf lend
  | Ast.SCycle -> (
    match latch with
    | Some l -> emit_i buf (Build.jmp env.ctx l)
    | None -> err "CYCLE outside of a loop")
  | Ast.SDo d -> lower_do env buf d

and lower_do env buf (d : Ast.doloop) =
  let step =
    match const_int_of_expr d.Ast.step with
    | Some s when s <> 0 -> s
    | Some _ -> err "DO step must be non-zero"
    | None -> err "DO step must be a compile-time constant"
  in
  let vreg = home env d.Ast.v in
  (* Counter initialization and (entry-evaluated) limit, in the parent
     block = the loop preheader region. *)
  let lo_op = lower_expr env buf d.Ast.lo in
  emit_i buf (Build.imov env.ctx vreg lo_op);
  let hi_op = lower_expr env buf d.Ast.hi in
  let limit =
    match hi_op with
    | Operand.Int _ -> hi_op
    | Operand.Reg _ ->
      (* Copy into a dedicated register so the bound cannot be clobbered by
         body code that reuses the source scalar. *)
      let lr = Reg.fresh env.ctx.Prog.rgen Reg.Int in
      emit_i buf (Build.imov env.ctx lr hi_op);
      Operand.reg lr
    | Operand.Flt _ | Operand.Lab _ -> err "bad DO bound"
  in
  let lid = Prog.fresh_loop_id env.ctx in
  let head = Printf.sprintf "L%d" lid in
  let exit_lbl = Printf.sprintf "X%d" lid in
  let latch_lbl = Printf.sprintf "T%d" lid in
  let trip =
    match const_int_of_expr d.Ast.lo, const_int_of_expr d.Ast.hi with
    | Some lo, Some hi ->
      let t = ((hi - lo) / step) + 1 in
      Some (max 0 t)
    | _ -> None
  in
  (* Zero-trip guard, unless the trip count is statically positive. *)
  (match trip with
  | Some t when t >= 1 -> ()
  | _ ->
    let cmp = if step > 0 then Insn.Gt else Insn.Lt in
    emit_i buf (Build.br env.ctx Reg.Int cmp (Operand.reg vreg) limit exit_lbl));
  if trip = Some 0 then ()
  else begin
    let bbuf : buf = ref [] in
    List.iter (lower_stmt env bbuf ~latch:(Some latch_lbl)) d.Ast.body;
    emit_l bbuf latch_lbl;
    emit_i bbuf (Build.ib env.ctx Insn.Add vreg (Operand.reg vreg) (Operand.Int step));
    let cmp = if step > 0 then Insn.Le else Insn.Ge in
    emit_i bbuf (Build.br env.ctx Reg.Int cmp (Operand.reg vreg) limit head);
    let meta =
      {
        Block.counter = Some vreg;
        step = Some step;
        limit = Some limit;
        trip;
        latch = Some latch_lbl;
        unrolled = 1;
      }
    in
    emit_loop buf { Block.lid; head; exit_lbl; meta; body = items_of bbuf }
  end

let lower_decls env buf (decls : Ast.decl list) =
  List.iter
    (fun d ->
      match d with
      | Ast.DScalar (n, ty, init) -> (
        let cls = cls_of_ty ty in
        let reg = Reg.fresh env.ctx.Prog.rgen cls in
        Hashtbl.replace env.regs n reg;
        match ty with
        | Ast.TInt ->
          emit_i buf (Build.imov env.ctx reg (Operand.Int (int_of_float init)))
        | Ast.TReal -> emit_i buf (Build.fmov env.ctx reg (Operand.Flt init)))
      | Ast.DArray _ -> ())
    decls

let adecl_of = function
  | Ast.DScalar _ -> None
  | Ast.DArray (name, ty, dims, f) ->
    let size = List.fold_left ( * ) 1 dims in
    let init =
      match ty with
      | Ast.TInt -> Prog.IInit (Array.init size (fun k -> int_of_float (f k)))
      | Ast.TReal -> Prog.FInit (Array.init size f)
    in
    Some { Prog.aname = name; acls = cls_of_ty ty; asize = size; ainit = init }

let lower (p : Ast.program) : Prog.t =
  let tenv = Typecheck.check p in
  let ctx = Prog.make_ctx () in
  let env = { ctx; tenv; regs = Hashtbl.create 16 } in
  let buf : buf = ref [] in
  lower_decls env buf p.Ast.decls;
  List.iter (lower_stmt env buf ~latch:None) p.Ast.stmts;
  let arrays = List.filter_map adecl_of p.Ast.decls in
  let outputs = List.map (fun n -> (n, home env n)) p.Ast.outs in
  { Prog.arrays; entry = items_of buf; ctx; outputs }
