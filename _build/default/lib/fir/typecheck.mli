(** Static checks on mini-Fortran programs: declared names, subscript
    arity and integrality, and expression typing with the implicit
    int->real promotion rule. *)

exception Type_error of string

type tenv = {
  scalars : (string, Ast.ty) Hashtbl.t;
  arrays : (string, Ast.ty * int list) Hashtbl.t;
}

val make_tenv : Ast.program -> tenv

val expr_type : tenv -> Ast.expr -> Ast.ty

val check : Ast.program -> tenv
(** Full program check; raises {!Type_error} with a message. *)
