(* Static checks on mini-Fortran programs: declared names, index arity,
   index and bound integrality, and expression typing with the implicit
   int->real promotion rule. *)

exception Type_error of string

type tenv = {
  scalars : (string, Ast.ty) Hashtbl.t;
  arrays : (string, Ast.ty * int list) Hashtbl.t;
}

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let make_tenv (p : Ast.program) =
  let scalars = Hashtbl.create 16 in
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun d ->
      match d with
      | Ast.DScalar (n, ty, _) ->
        if Hashtbl.mem scalars n || Hashtbl.mem arrays n then
          err "duplicate declaration of %s" n;
        Hashtbl.replace scalars n ty
      | Ast.DArray (n, ty, dims, _) ->
        if Hashtbl.mem scalars n || Hashtbl.mem arrays n then
          err "duplicate declaration of %s" n;
        if dims = [] || List.exists (fun d -> d <= 0) dims then
          err "array %s has invalid dimensions" n;
        Hashtbl.replace arrays n (ty, dims))
    p.Ast.decls;
  { scalars; arrays }

let rec expr_type env (e : Ast.expr) : Ast.ty =
  match e with
  | Ast.EInt _ -> Ast.TInt
  | Ast.EReal _ -> Ast.TReal
  | Ast.EVar n -> (
    match Hashtbl.find_opt env.scalars n with
    | Some ty -> ty
    | None -> err "undeclared scalar %s" n)
  | Ast.EIdx (n, idxs) -> (
    match Hashtbl.find_opt env.arrays n with
    | None -> err "undeclared array %s" n
    | Some (ty, dims) ->
      if List.length idxs <> List.length dims then
        err "array %s indexed with %d subscripts, declared with %d" n
          (List.length idxs) (List.length dims);
      List.iter
        (fun ix ->
          if expr_type env ix <> Ast.TInt then err "non-integer subscript of %s" n)
        idxs;
      ty)
  | Ast.EBin (op, a, b) -> (
    let ta = expr_type env a and tb = expr_type env b in
    match op, ta, tb with
    | Ast.BRem, Ast.TInt, Ast.TInt -> Ast.TInt
    | Ast.BRem, _, _ -> err "MOD requires integer operands"
    | _, Ast.TInt, Ast.TInt -> Ast.TInt
    | _, _, _ -> Ast.TReal (* implicit promotion *))
  | Ast.ENeg a -> expr_type env a
  | Ast.ECvt (ty, a) ->
    ignore (expr_type env a);
    ty

let check_cond env (c : Ast.cond) =
  ignore (expr_type env c.Ast.lhs);
  ignore (expr_type env c.Ast.rhs)

let rec check_stmt env ~in_loop (s : Ast.stmt) =
  match s with
  | Ast.SAssign (lv, e) -> (
    let te = expr_type env e in
    match lv with
    | Ast.LVar n -> (
      match Hashtbl.find_opt env.scalars n with
      | None -> err "assignment to undeclared scalar %s" n
      | Some Ast.TInt when te = Ast.TReal ->
        err "implicit real->int assignment to %s (use ECvt)" n
      | Some _ -> ())
    | Ast.LIdx (n, idxs) ->
      ignore (expr_type env (Ast.EIdx (n, idxs)));
      let ty, _ = Hashtbl.find env.arrays n in
      if ty = Ast.TInt && te = Ast.TReal then
        err "implicit real->int store to %s" n)
  | Ast.SIf (c, a, b) ->
    check_cond env c;
    List.iter (check_stmt env ~in_loop) a;
    List.iter (check_stmt env ~in_loop) b
  | Ast.SDo d ->
    if not (Hashtbl.mem env.scalars d.Ast.v) then
      err "undeclared loop variable %s" d.Ast.v;
    if Hashtbl.find env.scalars d.Ast.v <> Ast.TInt then
      err "loop variable %s must be integer" d.Ast.v;
    List.iter
      (fun e ->
        if expr_type env e <> Ast.TInt then err "non-integer DO bound")
      [ d.Ast.lo; d.Ast.hi; d.Ast.step ];
    List.iter (check_stmt env ~in_loop:true) d.Ast.body
  | Ast.SCycle -> if not in_loop then err "CYCLE outside of a loop"

let check (p : Ast.program) : tenv =
  let env = make_tenv p in
  List.iter (check_stmt env ~in_loop:false) p.Ast.stmts;
  List.iter
    (fun o ->
      if not (Hashtbl.mem env.scalars o) then err "undeclared output %s" o)
    p.Ast.outs;
  env
