(** Data-dependence graph of a superblock. Edges carry the latencies the
    list scheduler must respect; control edges encode branch ordering,
    store/branch ordering, and the superblock speculation rules (an
    instruction may move above a branch only if it is speculatable and
    its destination is dead at the branch target, and may not sink below
    a branch whose taken path needs its result). *)

open Impact_ir

type kind = Flow | Anti | Output | Mem | Ctrl

type edge = { esrc : int; edst : int; kind : kind; lat : int }

type t = {
  sb : Sb.t;
  nodes : int list;  (** instruction positions in program order *)
  edges : edge list;
  succs : (int * int) list array;  (** position -> (successor, latency) *)
  preds : (int * int) list array;
}

val kind_to_string : kind -> string

val no_speculation : Insn.t -> Reg.Set.t option
(** Default [live_at_target]: treats every destination as live (no
    speculation). *)

val build :
  ?live_at_target:(Insn.t -> Reg.Set.t option) ->
  ?pre_env:Linval.lin Reg.Map.t ->
  Sb.t ->
  t
(** [pre_env] supplies preheader-established relations between live-in
    registers (e.g. expanded induction pointers), used to disambiguate
    addresses whose difference is iteration-invariant. *)

val heights : t -> int array
(** Longest-latency path from each node to the segment end (the list
    scheduling priority). *)

val critical_path : t -> int
