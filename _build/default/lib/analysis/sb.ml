(* Superblock view of an innermost loop body: an array of items
   (instructions and local labels) with resolved internal branch targets.
   All analyses and transformations on loop bodies work over this view. *)

open Impact_ir

type t = {
  items : Block.item array;
  label_pos : (string, int) Hashtbl.t;  (* label -> item index *)
  head : string;
  exit_lbl : string;
}

let make ~head ~exit_lbl (items : Block.item array) : t =
  let label_pos = Hashtbl.create 8 in
  Array.iteri
    (fun k item ->
      match item with
      | Block.Lbl s -> Hashtbl.replace label_pos s k
      | Block.Ins _ -> ()
      | Block.Loop _ -> invalid_arg "Sb.make: nested loop in superblock view")
    items;
  { items; label_pos; head; exit_lbl }

let of_loop (l : Block.loop) : t =
  make ~head:l.Block.head ~exit_lbl:l.Block.exit_lbl (Array.of_list l.Block.body)

let to_body (t : t) : Block.t = Array.to_list t.items

let length t = Array.length t.items

let insn t k =
  match t.items.(k) with
  | Block.Ins i -> Some i
  | Block.Lbl _ | Block.Loop _ -> None

(* Position of an internal branch target; None for external targets
   (loop head, loop exit, or labels outside the body). *)
let internal_target t (i : Insn.t) : int option =
  match i.Insn.target with
  | None -> None
  | Some l -> Hashtbl.find_opt t.label_pos l

let is_back_branch t (i : Insn.t) =
  match i.Insn.target with Some l -> l = t.head | None -> false

let is_exit_branch t (i : Insn.t) =
  match i.Insn.target with Some l -> l = t.exit_lbl | None -> false

(* Instruction positions in order. *)
let insn_positions t =
  let acc = ref [] in
  Array.iteri
    (fun k item -> match item with Block.Ins _ -> acc := k :: !acc | _ -> ())
    t.items;
  List.rev !acc

let iter_insns f t =
  Array.iteri
    (fun k item -> match item with Block.Ins i -> f k i | Block.Lbl _ | Block.Loop _ -> ())
    t.items

(* Successor positions within the body; positions past the end and
   external targets are dropped. [n] = length is used as a virtual "fell
   out of body" node by some analyses, so we return raw successors. *)
let succs t k =
  match t.items.(k) with
  | Block.Lbl _ -> [ k + 1 ]
  | Block.Loop _ -> [ k + 1 ]
  | Block.Ins i -> (
    match i.Insn.op with
    | Insn.Jmp -> (
      match internal_target t i with Some p -> [ p ] | None -> [])
    | Insn.Br _ -> (
      let fall = [ k + 1 ] in
      match internal_target t i with
      | Some p -> p :: fall
      | None -> fall (* side exit or back edge: within-body path is fall-through *))
    | _ -> [ k + 1 ])

(* Registers defined / used anywhere in the body. *)
let all_defs t =
  let s = ref Reg.Set.empty in
  iter_insns (fun _ i -> List.iter (fun r -> s := Reg.Set.add r !s) (Insn.defs i)) t;
  !s

let all_uses t =
  let s = ref Reg.Set.empty in
  iter_insns (fun _ i -> List.iter (fun r -> s := Reg.Set.add r !s) (Insn.uses i)) t;
  !s

(* Positions defining a given register. *)
let def_positions t r =
  let acc = ref [] in
  iter_insns
    (fun k i -> if List.exists (Reg.equal r) (Insn.defs i) then acc := k :: !acc)
    t;
  List.rev !acc

(* Number of defs per register. *)
let def_counts t =
  let tbl = Hashtbl.create 16 in
  iter_insns
    (fun _ i ->
      List.iter
        (fun r ->
          let c = Option.value ~default:0 (Hashtbl.find_opt tbl r.Reg.id) in
          Hashtbl.replace tbl r.Reg.id (c + 1))
        (Insn.defs i))
    t;
  tbl
