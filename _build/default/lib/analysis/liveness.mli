(** Global liveness over the flattened instruction stream. Used by dead
    code elimination, the scheduler's speculation rule, and the register
    allocator. *)

open Impact_ir

type t = {
  flat : Flatten.t;
  live_in : Reg.Set.t array;
  live_out : Reg.Set.t array;
  exit_live : Reg.Set.t;
}

val successors : Flatten.t -> int -> int list

val analyze : ?exit_live:Reg.Set.t -> Flatten.t -> t

val live_at_label : t -> string -> Reg.Set.t
(** Live set at a label (the exit-live set for a trailing label). *)

val live_at_target : t -> Insn.t -> Reg.Set.t
(** Live set at a branch's target. *)

val of_prog : Prog.t -> t
(** Liveness with the program outputs live at exit. *)
