(** DOALL / DOACROSS / serial classification of innermost loops,
    standing in for the KAP-derived classification of the paper's
    Table 2. *)

open Impact_ir

type loop_class = Doall | Doacross | Serial

val to_string : loop_class -> string

val carried_scalars : Sb.t -> Reg.t list
(** Registers defined in the body whose incoming value may be observed
    by some use (dominance-based). *)

val recurrences : Sb.t -> Linval.t -> Reg.t list
(** Carried scalars that are not linear induction variables. *)

val carried_memory_dep : Sb.t -> Linval.t -> bool

val classify_body : Sb.t -> loop_class

val classify : Block.loop -> loop_class
