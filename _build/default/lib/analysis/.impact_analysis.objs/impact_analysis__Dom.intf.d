lib/analysis/dom.mli: Sb
