lib/analysis/liveness.mli: Flatten Impact_ir Insn Prog Reg
