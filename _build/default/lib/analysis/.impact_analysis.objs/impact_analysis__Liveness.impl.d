lib/analysis/liveness.ml: Array Flatten Hashtbl Impact_ir Insn List Prog Reg
