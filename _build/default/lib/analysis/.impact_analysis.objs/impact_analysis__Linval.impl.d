lib/analysis/linval.ml: Array Block Dom Hashtbl Impact_ir Insn List Map Operand Option Printf Reg Sb Stdlib String
