lib/analysis/ddg.ml: Array Block Hashtbl Impact_ir Insn Linval List Machine Operand Option Reg Sb
