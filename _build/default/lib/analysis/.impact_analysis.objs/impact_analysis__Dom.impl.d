lib/analysis/dom.ml: Array List Sb Sys
