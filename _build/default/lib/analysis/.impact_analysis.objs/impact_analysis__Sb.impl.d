lib/analysis/sb.ml: Array Block Hashtbl Impact_ir Insn List Option Reg
