lib/analysis/linval.mli: Block Hashtbl Impact_ir Map Reg Sb
