lib/analysis/ddg.mli: Impact_ir Insn Linval Reg Sb
