lib/analysis/classify.mli: Block Impact_ir Linval Reg Sb
