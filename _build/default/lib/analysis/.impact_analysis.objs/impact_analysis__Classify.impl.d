lib/analysis/classify.ml: Array Block Dom Hashtbl Impact_ir Insn Linval List Operand Option Reg Sb
