lib/analysis/sb.mli: Block Hashtbl Impact_ir Insn Reg
