(** Superblock view of an innermost loop body (or any straight-line
    segment with side exits): an array of items with resolved internal
    branch targets. All body-level analyses and transformations work over
    this view. *)

open Impact_ir

type t = {
  items : Block.item array;
  label_pos : (string, int) Hashtbl.t;  (** label -> item index *)
  head : string;  (** loop head label: branches to it are back-edges *)
  exit_lbl : string;  (** loop exit label: branches to it are exits *)
}

val make : head:string -> exit_lbl:string -> Block.item array -> t
(** View over raw items (rejects nested [Loop] items). *)

val of_loop : Block.loop -> t

val to_body : t -> Block.t

val length : t -> int

val insn : t -> int -> Insn.t option
(** The instruction at an item position, or [None] for labels. *)

val internal_target : t -> Insn.t -> int option
(** Position of a branch target inside the body; [None] for the head,
    the exit, or labels outside the body. *)

val is_back_branch : t -> Insn.t -> bool

val is_exit_branch : t -> Insn.t -> bool

val insn_positions : t -> int list

val iter_insns : (int -> Insn.t -> unit) -> t -> unit

val succs : t -> int -> int list
(** Successor positions within the body (external targets dropped). *)

val all_defs : t -> Reg.Set.t

val all_uses : t -> Reg.Set.t

val def_positions : t -> Reg.t -> int list

val def_counts : t -> (int, int) Hashtbl.t
(** Number of definitions per register id. *)
