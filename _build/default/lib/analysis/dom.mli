(** Always-executed analysis for a loop body: a position is unconditional
    when it lies on every path from the body entry to the back-branch.
    Transformations that must fire exactly once per iteration restrict
    themselves to unconditional positions. *)

val dominators : Sb.t -> int array array option
(** Packed-bitset dominator sets of the body's internal control-flow
    graph; [None] for an empty body. *)

val mem : int array -> int -> bool
(** Bitset membership: [mem dom.(v) u] means u dominates v. *)

val end_position : Sb.t -> int option
(** Position of the back-branch (or the last instruction). *)

val unconditional : Sb.t -> bool array
(** Per-position flag: executes on every complete iteration. *)
