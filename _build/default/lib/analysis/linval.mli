(** Linear symbolic values for integer registers within a loop body:
    each value is, when derivable, a linear combination
    [sum coeff_k * key_k + c] over symbolic keys. One engine powers
    memory disambiguation, induction-variable strength reduction, loop
    classification, and the expansion transformations' legality checks. *)

open Impact_ir

module Key : sig
  type t =
    | KReg of Reg.t  (** a register's value at region entry *)
    | KOpq of int  (** an unknowable value (instruction id or merge key) *)
    | KLab of string  (** an array base address *)
    | KTrip of int  (** the unknown trip count of an intermediate loop *)

  val compare : t -> t -> int
end

module KMap : Map.S with type key = Key.t

type lin = { coeffs : int KMap.t; c : int }

val const : int -> lin

val of_key : Key.t -> lin

val add : lin -> lin -> lin

val sub : lin -> lin -> lin

val scale : int -> lin -> lin

val is_const : lin -> bool

val equal : lin -> lin -> bool

val diff : lin -> lin -> int option
(** [diff a b = Some d] when [a - b] is the constant [d]. *)

val terms : lin -> (Key.t * int) list

val lin_to_string : lin -> string

(** Result of analyzing one body / segment. *)
type t = {
  sb : Sb.t;
  res : lin option array;  (** per position: value written to the int dst *)
  addr : lin option array;  (** per position: memory address of a load/store *)
  end_env : lin Reg.Map.t option;  (** env on reaching the back-branch *)
  final_env : lin Reg.Map.t option;  (** env after the last item *)
  def_counts : (int, int) Hashtbl.t;
}

val analyze : Sb.t -> t

val result : t -> int -> lin option

val address : t -> int -> lin option

val defs_of : t -> Reg.t -> int

val invariant : t -> Reg.t -> bool

val iv_step : t -> Reg.t -> int option
(** [Some d] when the register gains exactly [d] per complete iteration. *)

val lin_step : t -> lin -> int option
(** Per-iteration change of a linear value, when derivable. *)

val label_of_addr : lin -> string option

val subst : lin Reg.Map.t -> lin -> lin
(** Substitute register-entry keys by their values in the environment. *)

val compose : lin Reg.Map.t -> lin Reg.Map.t -> lin Reg.Map.t

val loop_effect : Block.loop -> lin Reg.Map.t
(** Abstract effect of running an intermediate loop (symbolic trip
    count for linearly-stepped registers, opaque otherwise). *)

val env_of_items : Block.item list -> lin Reg.Map.t
(** Forward evaluation of a loop-preheader region: each integer
    register's value at the end in terms of the values at the start. *)

type relation = Same | Disjoint | May

val relation : lin option -> lin option -> relation
(** Within-iteration relation between two memory addresses. *)
