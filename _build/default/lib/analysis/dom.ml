(* Always-executed analysis for a loop body: a position is
   "unconditional" if it lies on every path from the body entry to the
   back-branch, i.e. it dominates the back-branch in the body's internal
   control-flow graph. Transformations that must fire exactly once per
   iteration (induction-variable rewrites, renaming of definitions)
   restrict themselves to unconditional positions.

   Dominator sets are packed bitsets (one int array per node), since
   unrolled bodies can reach a few thousand instructions. *)

let bits_per_word = Sys.int_size

let words n = ((n - 1) / bits_per_word) + 1

let set bs k = bs.(k / bits_per_word) <- bs.(k / bits_per_word) lor (1 lsl (k mod bits_per_word))

let clear_all bs = Array.fill bs 0 (Array.length bs) 0

let mem bs k = bs.(k / bits_per_word) land (1 lsl (k mod bits_per_word)) <> 0

let inter_into dst src =
  let changed = ref false in
  for w = 0 to Array.length dst - 1 do
    let v = dst.(w) land src.(w) in
    if v <> dst.(w) then begin
      dst.(w) <- v;
      changed := true
    end
  done;
  !changed

let dominators (sb : Sb.t) : int array array option =
  let n = Sb.length sb in
  if n = 0 then None
  else begin
    let preds = Array.make n [] in
    for k = 0 to n - 1 do
      List.iter (fun s -> if s < n then preds.(s) <- k :: preds.(s)) (Sb.succs sb k)
    done;
    let nw = words n in
    let dom = Array.init n (fun _ -> Array.make nw (-1)) in
    clear_all dom.(0);
    set dom.(0) 0;
    let changed = ref true in
    while !changed do
      changed := false;
      for v = 1 to n - 1 do
        (match preds.(v) with
        | [] -> () (* unreachable within the body; keep the top element *)
        | ps ->
          let tmp = Array.make nw (-1) in
          List.iter (fun p -> ignore (inter_into tmp dom.(p))) ps;
          set tmp v;
          if inter_into dom.(v) tmp then changed := true)
      done
    done;
    Some dom
  end

(* Position of the back-branch (branch targeting the loop head); falls
   back to the last instruction position. *)
let end_position (sb : Sb.t) : int option =
  let n = Sb.length sb in
  let rec from k =
    if k < 0 then None
    else
      match Sb.insn sb k with
      | Some i when Sb.is_back_branch sb i -> Some k
      | Some _ | None -> from (k - 1)
  in
  match from (n - 1) with
  | Some k -> Some k
  | None ->
    let rec last k =
      if k < 0 then None
      else match Sb.insn sb k with Some _ -> Some k | None -> last (k - 1)
    in
    last (n - 1)

(* [unconditional sb] maps each item position to whether it executes on
   every complete iteration of the loop. *)
let unconditional (sb : Sb.t) : bool array =
  let n = Sb.length sb in
  match dominators sb, end_position sb with
  | Some dom, Some e -> Array.init n (fun p -> mem dom.(e) p)
  | _ -> Array.make n false
