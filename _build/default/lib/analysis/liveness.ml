(* Global liveness over the flattened instruction stream. Used by dead
   code elimination, by the superblock scheduler's speculation rule
   (an instruction may move above a branch only if its destination is
   dead at the branch target), and by the register allocator. *)

open Impact_ir

type t = {
  flat : Flatten.t;
  live_in : Reg.Set.t array;
  live_out : Reg.Set.t array;
  exit_live : Reg.Set.t;
}

let successors (flat : Flatten.t) k =
  let n = Array.length flat.Flatten.code in
  let i = flat.Flatten.code.(k) in
  match i.Insn.op with
  | Insn.Jmp -> [ Flatten.target_index flat i ]
  | Insn.Br _ ->
    let t = Flatten.target_index flat i in
    if k + 1 < n then [ k + 1; t ] else [ t ]
  | _ -> if k + 1 < n then [ k + 1 ] else []

let analyze ?(exit_live = Reg.Set.empty) (flat : Flatten.t) : t =
  let code = flat.Flatten.code in
  let n = Array.length code in
  let live_in = Array.make n Reg.Set.empty in
  let live_out = Array.make n Reg.Set.empty in
  let uses = Array.map (fun i -> Reg.Set.of_list (Insn.uses i)) code in
  let defs = Array.map (fun i -> Reg.Set.of_list (Insn.defs i)) code in
  let succs = Array.init n (successors flat) in
  let falls_off =
    Array.init n (fun k ->
      k = n - 1 && (match code.(k).Insn.op with Insn.Jmp -> false | _ -> true))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for k = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s ->
            (* A successor past the end is program exit (e.g. a branch to a
               trailing label). *)
            if s >= n then Reg.Set.union acc exit_live else Reg.Set.union acc live_in.(s))
          Reg.Set.empty succs.(k)
      in
      let out = if falls_off.(k) then Reg.Set.union out exit_live else out in
      let inn = Reg.Set.union uses.(k) (Reg.Set.diff out defs.(k)) in
      if not (Reg.Set.equal out live_out.(k)) || not (Reg.Set.equal inn live_in.(k))
      then begin
        live_out.(k) <- out;
        live_in.(k) <- inn;
        changed := true
      end
    done
  done;
  { flat; live_in; live_out; exit_live }

(* Live set at a label: the live-in of the instruction the label points
   at, or the exit-live set when the label is at the end of the code. *)
let live_at_label (t : t) lbl =
  match Hashtbl.find_opt t.flat.Flatten.labels lbl with
  | None -> invalid_arg ("Liveness.live_at_label: unknown label " ^ lbl)
  | Some k ->
    if k >= Array.length t.live_in then t.exit_live else t.live_in.(k)

(* Live set at the target of a branch instruction. *)
let live_at_target (t : t) (i : Insn.t) =
  match i.Insn.target with
  | None -> invalid_arg "Liveness.live_at_target: not a branch"
  | Some l -> live_at_label t l

(* Liveness of a program: the program outputs are live at exit. *)
let of_prog (p : Prog.t) : t =
  let exit_live = Reg.Set.of_list (List.map snd p.Prog.outputs) in
  analyze ~exit_live (Flatten.of_prog p)
