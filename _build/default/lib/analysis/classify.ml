(* DOALL / DOACROSS / serial classification of innermost loops, standing
   in for the KAP-derived classification of the paper's Table 2.

   - Serial: the loop carries a scalar recurrence other than a linear
     induction variable (accumulators, search variables, general
     recurrences).
   - DOACROSS: no scalar recurrence, but a loop-carried memory dependence
     (a store hits an address some later iteration reads or writes).
   - DOALL: neither; all iterations are independent. *)

open Impact_ir

type loop_class = Doall | Doacross | Serial

let to_string = function
  | Doall -> "doall"
  | Doacross -> "doacross"
  | Serial -> "serial"

(* Loop-carried scalar registers: defined in the body and whose incoming
   value may be observed by some use — i.e. some use position is not
   strictly dominated by a definition of the register. (A use in the same
   instruction as a definition, e.g. [s = s + t], reads the incoming
   value.) *)
let carried_scalars (sb : Sb.t) : Reg.t list =
  match Dom.dominators sb with
  | None -> []
  | Some dom ->
    let defs_of : (int, int list) Hashtbl.t = Hashtbl.create 16 in
    let uses_of : (int, int list) Hashtbl.t = Hashtbl.create 16 in
    let push tbl (r : Reg.t) p =
      Hashtbl.replace tbl r.Reg.id (p :: Option.value ~default:[] (Hashtbl.find_opt tbl r.Reg.id))
    in
    Sb.iter_insns
      (fun p i ->
        List.iter (fun r -> push defs_of r p) (Insn.defs i);
        List.iter (fun r -> push uses_of r p) (Insn.uses i))
      sb;
    Reg.Set.elements
      (Reg.Set.filter
         (fun r ->
           match Hashtbl.find_opt defs_of r.Reg.id with
           | None -> false
           | Some defs ->
             let uses = Option.value ~default:[] (Hashtbl.find_opt uses_of r.Reg.id) in
             List.exists
               (fun u ->
                 not (List.exists (fun d -> d <> u && Dom.mem dom.(u) d) defs))
               uses)
         (Sb.all_defs sb))

(* Scalar recurrences: carried scalars that are not linear induction
   variables. *)
let recurrences (sb : Sb.t) (lv : Linval.t) : Reg.t list =
  List.filter
    (fun r ->
      match Linval.iv_step lv r with Some _ -> false | None -> true)
    (carried_scalars sb)

(* Is there a loop-carried memory dependence? *)
let carried_memory_dep (sb : Sb.t) (lv : Linval.t) : bool =
  let mems = ref [] in
  Sb.iter_insns
    (fun p i -> if Insn.is_mem i then mems := (p, i) :: !mems)
    sb;
  let mems = !mems in
  let label_of (i : Insn.t) =
    match i.Insn.srcs.(0) with Operand.Lab s -> Some s | _ -> None
  in
  let pair_carried (p, (i : Insn.t)) (q, (j : Insn.t)) =
    if not (Insn.is_store i || Insn.is_store j) then false
    else
      match Linval.address lv p, Linval.address lv q with
      | Some a, Some b -> (
        match Linval.lin_step lv a, Linval.lin_step lv b with
        | Some sa, Some sb' when sa = sb' -> (
          match Linval.diff a b with
          | Some 0 -> sa = 0 (* same location every iteration *)
          | Some d -> sa <> 0 && d mod sa = 0
          | None -> (
            (* Incomparable symbolic bases: distinct arrays are disjoint. *)
            match label_of i, label_of j with
            | Some la, Some lb -> la = lb
            | _ -> true))
        | _ -> (
          (* Unknown strides: disjoint only if in different arrays. *)
          match label_of i, label_of j with
          | Some la, Some lb -> la = lb
          | _ -> true))
      | _ -> (
        match label_of i, label_of j with
        | Some la, Some lb -> la = lb
        | _ -> true)
  in
  let rec any_pair = function
    | [] -> false
    | m :: rest -> List.exists (fun m' -> pair_carried m m') (m :: rest) || any_pair rest
  in
  any_pair mems

let classify_body (sb : Sb.t) : loop_class =
  let lv = Linval.analyze sb in
  if recurrences sb lv <> [] then Serial
  else if carried_memory_dep sb lv then Doacross
  else Doall

let classify (l : Block.loop) : loop_class = classify_body (Sb.of_loop l)
