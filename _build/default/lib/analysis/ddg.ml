(* Data-dependence graph of a superblock (or any straight-line segment
   with side exits). Nodes are item positions holding instructions.

   Edge kinds:
   - Flow: def -> use, with the producer's latency.
   - Anti / Output: register reuse ordering (latency 0; the in-order
     machine applies same-cycle effects in program order).
   - Mem: load/store ordering from memory disambiguation.
   - Ctrl: branch ordering, store/branch ordering, and speculation
     constraints (an instruction may move above a branch only if it is
     speculatable and its destination is dead at the branch target).

   Any internal label that survives superblock formation is treated as a
   full scheduling barrier (sound fallback). *)

open Impact_ir

type kind = Flow | Anti | Output | Mem | Ctrl

type edge = { esrc : int; edst : int; kind : kind; lat : int }

type t = {
  sb : Sb.t;
  nodes : int list;  (* instruction positions, in program order *)
  edges : edge list;
  succs : (int * int) list array;  (* position -> (succ position, latency) *)
  preds : (int * int) list array;
}

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Mem -> "mem"
  | Ctrl -> "ctrl"

(* Conservative default: every destination is considered live at every
   branch target, i.e. no speculation. *)
let no_speculation : Insn.t -> Reg.Set.t option = fun _ -> None

let build ?(live_at_target = no_speculation) ?(pre_env = Reg.Map.empty) (sb : Sb.t) : t =
  let n = Sb.length sb in
  let edges = ref [] in
  let add esrc edst kind lat =
    if esrc <> edst then edges := { esrc; edst; kind; lat } :: !edges
  in
  let lv = Linval.analyze sb in
  let last_def : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let uses_since : (int, int list) Hashtbl.t = Hashtbl.create 32 in
  (* (position, instruction, live set at its target or None) *)
  let branches : (int * Insn.t * Reg.Set.t option) list ref = ref [] in
  let stores_since_branch : int list ref = ref [] in
  (* (position, destination) of earlier register-writing instructions:
     a later branch pins every one whose destination is live at its
     target (on the taken path the write must already have happened). *)
  let defs_so_far : (int * Reg.t) list ref = ref [] in
  let mem_ops : (int * bool * Linval.lin option * Operand.t) list ref = ref [] in
  let insn_positions = Sb.insn_positions sb in
  let last_insn_pos = match List.rev insn_positions with [] -> -1 | p :: _ -> p in
  let syntactic_disjoint b1 b2 =
    match b1, b2 with
    | Operand.Lab a, Operand.Lab b -> a <> b
    | _ -> false
  in
  (* Fall back to preheader facts when body-local symbolic values cannot
     relate two addresses: if their difference is invariant across
     iterations and the preheader makes it a constant, that constant
     decides aliasing for every iteration. *)
  let preheader_distance a1 a2 =
    match a1, a2 with
    | Some x, Some y ->
      let d = Linval.sub x y in
      if Linval.lin_step lv d <> Some 0 then None
      else
        let d' = Linval.subst pre_env d in
        if Linval.is_const d' then Some d'.Linval.c else None
    | _ -> None
  in
  let may_alias (a1 : Linval.lin option) (b1 : Operand.t) a2 b2 =
    match Linval.relation a1 a2 with
    | Linval.Disjoint -> false
    | Linval.Same -> true
    | Linval.May -> (
      match preheader_distance a1 a2 with
      | Some 0 -> true
      | Some _ -> false
      | None -> not (syntactic_disjoint b1 b2))
  in
  Array.iteri
    (fun p item ->
      match item with
      | Block.Loop _ -> invalid_arg "Ddg.build: nested loop"
      | Block.Lbl _ -> ()
      | Block.Ins i ->
        let lat_of = Machine.latency in
        (* Register flow dependences: uses before defs. *)
        List.iter
          (fun (r : Reg.t) ->
            (match Hashtbl.find_opt last_def r.Reg.id with
            | Some d -> (
              match Sb.insn sb d with
              | Some di -> add d p Flow (lat_of di.Insn.op)
              | None -> ())
            | None -> ());
            let us = Option.value ~default:[] (Hashtbl.find_opt uses_since r.Reg.id) in
            Hashtbl.replace uses_since r.Reg.id (p :: us))
          (Insn.uses i);
        List.iter
          (fun (r : Reg.t) ->
            List.iter
              (fun u -> add u p Anti 0)
              (Option.value ~default:[] (Hashtbl.find_opt uses_since r.Reg.id));
            (match Hashtbl.find_opt last_def r.Reg.id with
            | Some d -> add d p Output 0
            | None -> ());
            Hashtbl.replace last_def r.Reg.id p;
            Hashtbl.replace uses_since r.Reg.id [])
          (Insn.defs i);
        (* Memory dependences. *)
        if Insn.is_mem i then begin
          let addr = Linval.address lv p in
          let base = i.Insn.srcs.(0) in
          let st = Insn.is_store i in
          List.iter
            (fun (q, qst, qaddr, qbase) ->
              if (st || qst) && may_alias qaddr qbase addr base then
                add q p Mem (if qst then 1 else 0))
            !mem_ops;
          mem_ops := (p, st, addr, base) :: !mem_ops
        end;
        (* Control dependences. *)
        if Insn.is_branch i then begin
          (match !branches with (b, _, _) :: _ -> add b p Ctrl 0 | [] -> ());
          List.iter (fun s -> add s p Ctrl 0) !stores_since_branch;
          stores_since_branch := [];
          let live = live_at_target i in
          (* Writes whose results the taken path needs may not sink below
             this branch. *)
          List.iter
            (fun (q, d) ->
              match live with
              | None -> add q p Ctrl 0
              | Some set -> if Reg.Set.mem d set then add q p Ctrl 0)
            !defs_so_far;
          branches := (p, i, live) :: !branches
        end
        else if Insn.is_store i then begin
          (match !branches with (b, _, _) :: _ -> add b p Ctrl 0 | [] -> ());
          stores_since_branch := p :: !stores_since_branch
        end
        else begin
          (* Speculatable instruction: may not hoist above a branch whose
             off-path target needs its destination. *)
          match i.Insn.dst with
          | None -> ()
          | Some d ->
            List.iter
              (fun (b, _, live) ->
                match live with
                | None -> add b p Ctrl 0
                | Some set -> if Reg.Set.mem d set then add b p Ctrl 0)
              !branches;
            defs_so_far := (p, d) :: !defs_so_far
        end)
    sb.Sb.items;
  (* Nothing may sink past a final control transfer. *)
  (match Sb.insn sb last_insn_pos with
  | Some i when Insn.is_branch i ->
    List.iter (fun p -> if p <> last_insn_pos then add p last_insn_pos Ctrl 0) insn_positions
  | Some _ | None -> ());
  (* Leftover internal labels are full barriers. *)
  Array.iteri
    (fun p item ->
      match item with
      | Block.Lbl _ ->
        let rep =
          let rec next k = if k >= n then None
            else match Sb.insn sb k with Some _ -> Some k | None -> next (k + 1)
          in
          next (p + 1)
        in
        (match rep with
        | None -> ()
        | Some r ->
          List.iter
            (fun q -> if q < p then add q r Ctrl 0 else if q > r then add r q Ctrl 0)
            insn_positions)
      | Block.Ins _ | Block.Loop _ -> ())
    sb.Sb.items;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  (* Deduplicate keeping the max latency per (src, dst). *)
  let best : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let k = (e.esrc, e.edst) in
      match Hashtbl.find_opt best k with
      | Some l when l >= e.lat -> ()
      | _ -> Hashtbl.replace best k e.lat)
    !edges;
  Hashtbl.iter
    (fun (s, d) lat ->
      succs.(s) <- (d, lat) :: succs.(s);
      preds.(d) <- (s, lat) :: preds.(d))
    best;
  { sb; nodes = insn_positions; edges = !edges; succs; preds }

(* Longest-path height of each node to the end of the segment, counting
   the node's own latency; the classic list-scheduling priority. *)
let heights (t : t) : int array =
  let n = Sb.length t.sb in
  let h = Array.make n 0 in
  let order = List.rev t.nodes in
  List.iter
    (fun p ->
      let lat_self =
        match Sb.insn t.sb p with Some i -> Machine.latency i.Insn.op | None -> 0
      in
      let succ_max =
        List.fold_left (fun acc (d, lat) -> max acc (h.(d) + lat)) 0 t.succs.(p)
      in
      h.(p) <- max lat_self succ_max)
    order;
  h

(* Length of the critical path through the segment (max height). *)
let critical_path (t : t) : int =
  Array.fold_left max 0 (heights t)
