(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 3) from our implementation, plus Bechamel
   micro-benchmarks of the cost of the compiler stages behind each
   artifact.

   Usage:
     main.exe                 run everything (tables, figures, summary,
                              ablation) except the Bechamel section
     main.exe fig8 ... fig15  specific figures
     main.exe table1 table2 summary ablation csv bechamel
*)

open Impact_ir
open Impact_core

let subjects : Experiment.subject list =
  List.map
    (fun (w : Impact_workloads.Suite.t) ->
      {
        Experiment.sname = w.Impact_workloads.Suite.name;
        group = Impact_workloads.Suite.ltype_to_string w.Impact_workloads.Suite.ltype;
        ast = w.Impact_workloads.Suite.ast;
      })
    Impact_workloads.Suite.all

let machines = [ Machine.issue_2; Machine.issue_4; Machine.issue_8 ]

(* The full evaluation matrix, computed once on demand. *)
let cells : Experiment.cell list Lazy.t =
  lazy
    (Experiment.run_all
       ~progress:(fun name -> Printf.eprintf "  [run] %s\n%!" name)
       machines Level.all subjects)

let print_table1 () = print_string (Report.table1 ())

let print_table2 () =
  Printf.printf "Table 2: loop nest descriptions (our kernels vs. paper labels)\n";
  Printf.printf "%-12s %-8s %4s %5s %4s %-9s %-9s %5s\n" "Name" "Origin" "Size" "Iters"
    "Nest" "Type" "OurClass" "Conds";
  print_string (String.make 70 '-');
  print_newline ();
  List.iter
    (fun (w : Impact_workloads.Suite.t) ->
      let p = Impact_opt.Conv.run (Impact_fir.Lower.lower w.Impact_workloads.Suite.ast) in
      let ours =
        match List.filter Block.is_innermost (Block.loops p.Prog.entry) with
        | l :: _ ->
          Impact_analysis.Classify.to_string (Impact_analysis.Classify.classify l)
        | [] -> "?"
      in
      Printf.printf "%-12s %-8s %4d %5d %4d %-9s %-9s %5s\n"
        w.Impact_workloads.Suite.name w.Impact_workloads.Suite.origin
        w.Impact_workloads.Suite.size w.Impact_workloads.Suite.iters
        w.Impact_workloads.Suite.nest
        (Impact_workloads.Suite.ltype_to_string w.Impact_workloads.Suite.ltype)
        ours
        (if w.Impact_workloads.Suite.conds then "yes" else "no"))
    Impact_workloads.Suite.all

let speedup_figure ~title ?group ~bounds ~labels machine =
  let dist = Experiment.speedup_distribution ?group ~bounds machine (Lazy.force cells) in
  print_string (Report.distribution_table ~title ~labels dist)

let register_figure ~title ?group machine =
  let dist = Experiment.register_distribution ?group machine (Lazy.force cells) in
  print_string (Report.distribution_table ~title ~labels:Experiment.reg_labels dist)

let print_fig8 () =
  speedup_figure ~title:"Figure 8: speedup distribution, issue-2"
    ~bounds:Experiment.fig8_bounds ~labels:Experiment.fig8_labels Machine.issue_2

let print_fig9 () =
  speedup_figure ~title:"Figure 9: speedup distribution, issue-4"
    ~bounds:Experiment.fig9_bounds ~labels:Experiment.fig9_labels Machine.issue_4

let print_fig10 () =
  speedup_figure ~title:"Figure 10: speedup distribution, issue-8"
    ~bounds:Experiment.fig10_bounds ~labels:Experiment.fig10_labels Machine.issue_8

let print_fig11 () =
  register_figure ~title:"Figure 11: register usage distribution, issue-8"
    Machine.issue_8

let print_fig12 () =
  speedup_figure ~title:"Figure 12: speedup distribution of DOALL loops, issue-8"
    ~group:"doall" ~bounds:Experiment.fig10_bounds ~labels:Experiment.fig10_labels
    Machine.issue_8

let print_fig13 () =
  register_figure ~title:"Figure 13: register usage of DOALL loops, issue-8"
    ~group:"doall" Machine.issue_8

let print_fig14 () =
  speedup_figure ~title:"Figure 14: speedup distribution of non-DOALL loops, issue-8"
    ~group:"non-doall" ~bounds:Experiment.fig10_bounds ~labels:Experiment.fig10_labels
    Machine.issue_8

let print_fig15 () =
  register_figure ~title:"Figure 15: register usage of non-DOALL loops, issue-8"
    ~group:"non-doall" Machine.issue_8

let print_summary () =
  let cs = Lazy.force cells in
  let avg ?group level machine =
    Experiment.avg_speedup (Experiment.filter_cells ?group ~level ~machine cs)
  in
  let avg_r level =
    Experiment.avg_regs (Experiment.filter_cells ~level ~machine:Machine.issue_8 cs)
  in
  Printf.printf "Summary (Section 3.2 / Section 4 quantities; paper values in parens)\n";
  Printf.printf "%s\n" (String.make 72 '-');
  Printf.printf "avg speedup issue-4: Lev3 %.2f (3.73)   Lev4 %.2f (4.35)\n"
    (avg Level.Lev3 Machine.issue_4) (avg Level.Lev4 Machine.issue_4);
  Printf.printf "avg speedup issue-8: Lev3 %.2f (5.10)   Lev4 %.2f (6.68)\n"
    (avg Level.Lev3 Machine.issue_8) (avg Level.Lev4 Machine.issue_8);
  Printf.printf "issue-8 Lev2 overall %.2f (5.1)  doall %.2f (6.8)  non-doall %.2f (3.7)\n"
    (avg Level.Lev2 Machine.issue_8)
    (avg ~group:"doall" Level.Lev2 Machine.issue_8)
    (avg ~group:"non-doall" Level.Lev2 Machine.issue_8);
  Printf.printf "issue-8 Lev4 doall %.2f (7.8)  non-doall %.2f (5.8)\n"
    (avg ~group:"doall" Level.Lev4 Machine.issue_8)
    (avg ~group:"non-doall" Level.Lev4 Machine.issue_8);
  Printf.printf
    "avg registers issue-8: Lev1 %.0f (28)  Lev2 %.0f (57)  Lev3 %.0f (65)  Lev4 %.0f (71)\n"
    (avg_r Level.Lev1) (avg_r Level.Lev2) (avg_r Level.Lev3) (avg_r Level.Lev4);
  Printf.printf "register growth Conv->Lev4 issue-8: %.1fx (2.6x)\n"
    (avg_r Level.Lev4 /. avg_r Level.Conv);
  let within128 =
    List.length
      (List.filter
         (fun c -> Experiment.total_regs c < 128)
         (Experiment.filter_cells ~level:Level.Lev4 ~machine:Machine.issue_8 cs))
  in
  Printf.printf "loops under 128 registers at Lev4, issue-8: %d/40 (37/40)\n" within128

(* Leave-one-out ablation of the Lev4 pipeline at issue-8. *)
let print_ablation () =
  let variants =
    [
      ("full Lev4", fun p -> Level.apply Level.Lev4 p);
      ( "no renaming",
        Level.apply_custom ?unroll_factor:None ~unroll:true ~accum:true ~ind:true ~search:true
          ~rename:false ~combine:true ~strength:true ~thr:true );
      ( "no accumulator exp.",
        Level.apply_custom ?unroll_factor:None ~unroll:true ~accum:false ~ind:true ~search:true
          ~rename:true ~combine:true ~strength:true ~thr:true );
      ( "no induction exp.",
        Level.apply_custom ?unroll_factor:None ~unroll:true ~accum:true ~ind:false ~search:true
          ~rename:true ~combine:true ~strength:true ~thr:true );
      ( "no search exp.",
        Level.apply_custom ?unroll_factor:None ~unroll:true ~accum:true ~ind:true ~search:false
          ~rename:true ~combine:true ~strength:true ~thr:true );
      ( "no combining",
        Level.apply_custom ?unroll_factor:None ~unroll:true ~accum:true ~ind:true ~search:true
          ~rename:true ~combine:false ~strength:true ~thr:true );
      ( "no strength red.",
        Level.apply_custom ?unroll_factor:None ~unroll:true ~accum:true ~ind:true ~search:true
          ~rename:true ~combine:true ~strength:false ~thr:true );
      ( "no tree height red.",
        Level.apply_custom ?unroll_factor:None ~unroll:true ~accum:true ~ind:true ~search:true
          ~rename:true ~combine:true ~strength:true ~thr:false );
    ]
  in
  Printf.printf "Ablation: average issue-8 speedup of Lev4 with one transformation removed\n";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun (name, pipeline) ->
      let speedups =
        List.map
          (fun (s : Experiment.subject) ->
            let lower () = Impact_fir.Lower.lower s.Experiment.ast in
            let base = Compile.measure Level.Conv Machine.issue_1 (lower ()) in
            let p = pipeline (lower ()) in
            let p = Impact_sched.Superblock.run p in
            let p = Impact_sched.List_sched.run Machine.issue_8 p in
            let r = Impact_sim.Sim.run Machine.issue_8 p in
            float_of_int base.Compile.cycles /. float_of_int r.Impact_sim.Sim.cycles)
          subjects
      in
      let avg = List.fold_left ( +. ) 0.0 speedups /. float_of_int (List.length speedups) in
      Printf.printf "%-24s %.2f\n%!" name avg)
    variants

let print_csv () = print_string (Report.cells_csv (Lazy.force cells))

(* Extension figure (ours): average speedup per level across issue rates
   1..16, showing the paper's claim that the demand for higher
   transformation levels grows with the issue rate. *)
let print_issue_sweep () =
  Printf.printf
    "Issue-rate sweep (ours): average speedup per level, issue 1..16\n";
  Printf.printf "%s\n" (String.make 60 '-');
  let issues = [ 1; 2; 4; 8; 16 ] in
  let machines = List.map (fun i -> Machine.make ~issue:i ()) issues in
  let cells = Experiment.run_all machines Level.all subjects in
  Printf.printf "%-7s" "issue";
  List.iter (fun l -> Printf.printf " %6s" (Level.to_string l)) Level.all;
  print_newline ();
  List.iter
    (fun machine ->
      Printf.printf "%-7d" machine.Machine.issue;
      List.iter
        (fun level ->
          Printf.printf " %6.2f"
            (Experiment.avg_speedup (Experiment.filter_cells ~level ~machine cells)))
        Level.all;
      print_newline ())
    machines

(* Extension table (ours): dynamic-instruction overhead of the
   transformations — the preconditioning loops, expansion bookkeeping and
   tail duplication all add instructions; this shows the price paid for
   the cycle reductions. *)
let print_overhead () =
  Printf.printf
    "Dynamic instruction overhead (ours): dyn insns relative to Conv, issue-8\n";
  Printf.printf "%s\n" (String.make 60 '-');
  let cs = Lazy.force cells in
  let conv_of name =
    match
      List.find_opt
        (fun (c : Experiment.cell) ->
          c.Experiment.subject.Experiment.sname = name
          && c.Experiment.level = Level.Conv
          && c.Experiment.machine.Machine.name = "issue-8")
        cs
    with
    | Some c -> float_of_int c.Experiment.dyn_insns
    | None -> nan
  in
  List.iter
    (fun level ->
      let ratios =
        List.filter_map
          (fun (c : Experiment.cell) ->
            if c.Experiment.level = level && c.Experiment.machine.Machine.name = "issue-8"
            then Some (float_of_int c.Experiment.dyn_insns /. conv_of c.Experiment.subject.Experiment.sname)
            else None)
          cs
      in
      let avg = List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios) in
      let mx = List.fold_left max 0.0 ratios in
      Printf.printf "%-6s avg %.2fx   max %.2fx\n" (Level.to_string level) avg mx)
    Level.all

(* ---- Bechamel micro-benchmarks: one Test.make per table/figure,
   measuring the compiler work behind one representative row. ---- *)

let bechamel_tests () =
  let open Bechamel in
  let kernel name =
    (Option.get (Impact_workloads.Suite.find name)).Impact_workloads.Suite.ast
  in
  let compile_test name level machine wname =
    Test.make ~name
      (Staged.stage (fun () ->
         ignore (Compile.compile level machine (Impact_fir.Lower.lower (kernel wname)))))
  in
  let measure_test name level machine wname =
    Test.make ~name
      (Staged.stage (fun () ->
         ignore (Compile.measure level machine (Impact_fir.Lower.lower (kernel wname)))))
  in
  [
    Test.make ~name:"table1:machine-description"
      (Staged.stage (fun () -> ignore (Report.table1 ())));
    Test.make ~name:"table2:classify-row"
      (Staged.stage (fun () ->
         let p = Impact_opt.Conv.run (Impact_fir.Lower.lower (kernel "dotprod")) in
         match List.filter Block.is_innermost (Block.loops p.Prog.entry) with
         | l :: _ -> ignore (Impact_analysis.Classify.classify l)
         | [] -> ()));
    compile_test "fig8:compile-lev4-issue2" Level.Lev4 Machine.issue_2 "add";
    compile_test "fig9:compile-lev4-issue4" Level.Lev4 Machine.issue_4 "add";
    measure_test "fig10:measure-lev4-issue8" Level.Lev4 Machine.issue_8 "sum";
    Test.make ~name:"fig11:regalloc-lev4-issue8"
      (Staged.stage
         (let p =
            Compile.compile Level.Lev4 Machine.issue_8
              (Impact_fir.Lower.lower (kernel "dotprod"))
          in
          fun () -> ignore (Impact_regalloc.Regalloc.measure p)));
    measure_test "fig12:doall-row" Level.Lev2 Machine.issue_8 "add";
    measure_test "fig13:doall-regs-row" Level.Lev4 Machine.issue_8 "merge";
    measure_test "fig14:serial-row" Level.Lev4 Machine.issue_8 "dotprod";
    measure_test "fig15:serial-regs-row" Level.Lev4 Machine.issue_8 "maxval";
    measure_test "summary:lev3-issue8" Level.Lev3 Machine.issue_8 "sum";
  ]

let run_bechamel () =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false () in
  let tests = bechamel_tests () in
  Printf.printf "Bechamel: per-artifact compiler cost (monotonic clock, ns/run)\n";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
      in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some [ x ] -> Printf.sprintf "%12.0f ns/run" x
            | _ -> "n/a"
          in
          Printf.printf "%-44s %s\n%!" name est)
        analyzed)
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    if args = [] then
      [
        "table1"; "table2"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13";
        "fig14"; "fig15"; "summary"; "ablation"; "issue-sweep"; "overhead";
      ]
    else args
  in
  List.iter
    (fun arg ->
      (match arg with
      | "table1" -> print_table1 ()
      | "table2" -> print_table2 ()
      | "fig8" -> print_fig8 ()
      | "fig9" -> print_fig9 ()
      | "fig10" -> print_fig10 ()
      | "fig11" -> print_fig11 ()
      | "fig12" -> print_fig12 ()
      | "fig13" -> print_fig13 ()
      | "fig14" -> print_fig14 ()
      | "fig15" -> print_fig15 ()
      | "summary" -> print_summary ()
      | "ablation" -> print_ablation ()
      | "csv" -> print_csv ()
      | "issue-sweep" -> print_issue_sweep ()
      | "overhead" -> print_overhead ()
      | "bechamel" -> run_bechamel ()
      | other -> Printf.eprintf "unknown argument %s\n" other);
      print_newline ())
    args
