examples/induction.ml: Compile Impact_core Impact_fir Impact_ir Level List Printf
