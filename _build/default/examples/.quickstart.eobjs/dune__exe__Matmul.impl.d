examples/matmul.ml: Array Compile Impact_core Impact_fir Impact_ir Impact_sim Level List Printf
