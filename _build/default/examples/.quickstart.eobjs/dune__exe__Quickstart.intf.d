examples/quickstart.mli:
