examples/induction.mli:
