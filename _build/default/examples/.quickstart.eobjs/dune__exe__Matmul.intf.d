examples/matmul.mli:
