examples/custom_kernel.ml: Compile Impact_analysis Impact_core Impact_fir Impact_ir Impact_opt Level List Printf
