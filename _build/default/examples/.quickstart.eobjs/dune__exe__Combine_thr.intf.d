examples/combine_thr.mli:
