examples/combine_thr.ml: Compile Impact_core Impact_fir Impact_ir Impact_opt Impact_sched Impact_sim Level List Printf Tree_height
