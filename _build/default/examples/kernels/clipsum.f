! conditional accumulation with a running maximum and an early continue
integer j
integer cnt = 0
real s = 0.0
real mx = -1.0e30
real A(128) seed 5

do j = 1, 128
  if (A(j) .lt. 0.5) cycle
  s = s + A(j)
  cnt = cnt + 1
  if (A(j) .gt. mx) then
    mx = A(j)
  end
end

output s, mx, cnt
