! dot product: a serial accumulation the Lev4 expansions parallelize
integer j
real s = 0.0
real A(256) seed 3
real B(256) seed 4

do j = 1, 256
  s = s + A(j) * B(j)
end

output s
