! saxpy: Y = Y + a*X, a DOALL loop
integer j
real a = 1.75
real X(200) seed 1
real Y(200) seed 2
real Z(200) zero

do j = 1, 200
  Y(j) = Y(j) + a * X(j)
  Z(j) = X(j) * 0.5
end
